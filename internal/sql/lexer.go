package sql

import (
	"fmt"
	"strings"
)

// Lexer turns SQL text into tokens.
type Lexer struct {
	src string
	pos int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token, or an error on malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		up := strings.ToUpper(text)
		if keywords[up] {
			return Token{Kind: TokKeyword, Text: up, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: start}, nil

	case c >= '0' && c <= '9':
		sawDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '.' && !sawDot && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
				sawDot = true
				l.pos++
				continue
			}
			if !isDigit(ch) {
				break
			}
			l.pos++
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil

	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				// '' is an escaped quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
			}
			b.WriteByte(ch)
			l.pos++
		}

	default:
		// Multi-character operators first.
		for _, op := range []string{"<=", ">=", "<>", "!=", "||"} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += 2
				text := op
				if op == "!=" {
					text = "<>"
				}
				return Token{Kind: TokSymbol, Text: text, Pos: start}, nil
			}
		}
		switch c {
		case '(', ')', ',', '.', '+', '-', '*', '/', '=', '<', '>':
			l.pos++
			return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil
		case '?':
			l.pos++
			return Token{Kind: TokParam, Pos: start}, nil
		case ':':
			l.pos++
			if l.pos >= len(l.src) || !isIdentStart(l.src[l.pos]) {
				return Token{}, fmt.Errorf("sql: expected parameter name after ':' at offset %d", start)
			}
			nameStart := l.pos
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			return Token{Kind: TokParam, Text: l.src[nameStart:l.pos], Pos: start}, nil
		}
		return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += 2 + end + 2
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) || c == '#' || c == '$' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// LexAll tokenizes the whole input; used by the parser and tests.
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
