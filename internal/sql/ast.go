package sql

// The AST mirrors the grammar closely; semantic analysis (package qtree)
// resolves names against the catalog and produces the query tree IR.

// Node is implemented by every AST node.
type Node interface{ astNode() }

// SelectStmt is a full query: a body (plain select or set operation) plus an
// optional ORDER BY that applies to the whole result.
type SelectStmt struct {
	Body    Body
	OrderBy []OrderItem
}

// Body is either *Select or *SetOp.
type Body interface {
	Node
	bodyNode()
}

// Select is a single SELECT ... FROM ... query block.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableExpr
	Where    Expr
	GroupBy  *GroupBy
	Having   Expr
}

// SelectItem is one select-list entry. Star entries ("*" or "t.*") have
// Star set and Expr nil (Qual holds the table alias for "t.*").
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
	Qual  string
}

// GroupBy is the GROUP BY clause. Rollup marks GROUP BY ROLLUP(...);
// Sets is non-nil for GROUPING SETS ((..), (..)).
type GroupBy struct {
	Exprs  []Expr
	Rollup bool
	Sets   [][]Expr
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SetOpKind distinguishes set operations.
type SetOpKind int

// Set operation kinds.
const (
	UnionOp SetOpKind = iota
	UnionAllOp
	IntersectOp
	MinusOp
)

func (k SetOpKind) String() string {
	switch k {
	case UnionOp:
		return "UNION"
	case UnionAllOp:
		return "UNION ALL"
	case IntersectOp:
		return "INTERSECT"
	case MinusOp:
		return "MINUS"
	}
	return "?"
}

// SetOp combines two bodies with a set operation.
type SetOp struct {
	Kind        SetOpKind
	Left, Right Body
}

// TableExpr is a FROM-list entry: *TableName, *DerivedTable, or *JoinExpr.
type TableExpr interface {
	Node
	tableExpr()
}

// TableName references a base table, optionally aliased.
type TableName struct {
	Name  string
	Alias string
}

// DerivedTable is an inline view: (SELECT ...) alias.
type DerivedTable struct {
	Select *SelectStmt
	Alias  string
}

// JoinKind distinguishes ANSI join syntaxes.
type JoinKind int

// Join kinds supported in the FROM clause. RIGHT OUTER JOIN parses and is
// normalized to a LEFT OUTER JOIN with swapped operands during binding.
const (
	InnerJoin JoinKind = iota
	LeftOuterJoin
	RightOuterJoin
	FullOuterJoin
)

// JoinExpr is an ANSI join: left JOIN right ON cond.
type JoinExpr struct {
	Kind        JoinKind
	Left, Right TableExpr
	On          Expr
}

// Expr is implemented by every expression node.
type Expr interface {
	Node
	exprNode()
}

// NumLit is a numeric literal. IsFloat distinguishes 1 from 1.0.
type NumLit struct {
	Text    string
	IsFloat bool
}

// StrLit is a string literal.
type StrLit struct{ Val string }

// NullLit is the NULL literal.
type NullLit struct{}

// BoolLit is TRUE or FALSE.
type BoolLit struct{ Val bool }

// ColRef is a possibly-qualified column reference (Qual may be "").
type ColRef struct {
	Qual string
	Name string
}

// Rownum is Oracle's ROWNUM pseudo-column.
type Rownum struct{}

// Param is a bind parameter placeholder. Named parameters (":name") carry
// the name; positional parameters ("?") have Name == "" and are identified
// by Pos, their zero-based occurrence order in the statement.
type Param struct {
	Name string
	Pos  int
}

// BinExpr is a binary operation. Op is one of: + - * / || = <> < <= > >=
// AND OR.
type BinExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr is unary minus.
type UnaryExpr struct {
	Op string // "-"
	E  Expr
}

// NotExpr is logical NOT.
type NotExpr struct{ E Expr }

// IsNull is "expr IS [NOT] NULL".
type IsNull struct {
	E   Expr
	Not bool
}

// Between is "expr [NOT] BETWEEN lo AND hi".
type Between struct {
	E, Lo, Hi Expr
	Not       bool
}

// Like is "expr [NOT] LIKE pattern" (pattern with % and _ wildcards).
type Like struct {
	E, Pattern Expr
	Not        bool
}

// InExpr is "expr [NOT] IN (list)" or "expr [NOT] IN (subquery)".
// Left may have multiple items for "(a, b) IN (subquery)".
type InExpr struct {
	Left     []Expr
	List     []Expr      // value list form
	Subquery *SelectStmt // subquery form
	Not      bool
}

// Exists is "[NOT] EXISTS (subquery)".
type Exists struct {
	Subquery *SelectStmt
	Not      bool
}

// Quant is "expr op ANY|ALL (subquery)".
type Quant struct {
	Op       string // comparison operator
	All      bool   // false = ANY/SOME
	Left     []Expr
	Subquery *SelectStmt
}

// ScalarSubquery is a subquery used as a scalar expression.
type ScalarSubquery struct{ Subquery *SelectStmt }

// FuncCall is a function invocation; Star marks COUNT(*). A non-nil Over
// makes it a window function.
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
	Over     *WindowSpec
}

// WindowSpec is an OVER clause: PARTITION BY + ORDER BY with an optional
// frame. Running reports a "RANGE/ROWS BETWEEN UNBOUNDED PRECEDING AND
// CURRENT ROW" frame (the running-aggregate form of the paper's Q7); with
// an ORDER BY and no explicit frame, Running is the SQL default.
type WindowSpec struct {
	PartitionBy []Expr
	OrderBy     []OrderItem
	Running     bool
}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr
}

// CaseWhen is one WHEN cond THEN result arm.
type CaseWhen struct {
	Cond   Expr
	Result Expr
}

func (*SelectStmt) astNode()   {}
func (*Select) astNode()       {}
func (*SetOp) astNode()        {}
func (*TableName) astNode()    {}
func (*DerivedTable) astNode() {}
func (*JoinExpr) astNode()     {}

func (*Select) bodyNode() {}
func (*SetOp) bodyNode()  {}

func (*TableName) tableExpr()    {}
func (*DerivedTable) tableExpr() {}
func (*JoinExpr) tableExpr()     {}

func (*NumLit) astNode()         {}
func (*StrLit) astNode()         {}
func (*NullLit) astNode()        {}
func (*BoolLit) astNode()        {}
func (*ColRef) astNode()         {}
func (*Rownum) astNode()         {}
func (*Param) astNode()          {}
func (*BinExpr) astNode()        {}
func (*UnaryExpr) astNode()      {}
func (*NotExpr) astNode()        {}
func (*IsNull) astNode()         {}
func (*Between) astNode()        {}
func (*Like) astNode()           {}
func (*InExpr) astNode()         {}
func (*Exists) astNode()         {}
func (*Quant) astNode()          {}
func (*ScalarSubquery) astNode() {}
func (*FuncCall) astNode()       {}
func (*CaseExpr) astNode()       {}

func (*NumLit) exprNode()         {}
func (*StrLit) exprNode()         {}
func (*NullLit) exprNode()        {}
func (*BoolLit) exprNode()        {}
func (*ColRef) exprNode()         {}
func (*Rownum) exprNode()         {}
func (*Param) exprNode()          {}
func (*BinExpr) exprNode()        {}
func (*UnaryExpr) exprNode()      {}
func (*NotExpr) exprNode()        {}
func (*IsNull) exprNode()         {}
func (*Between) exprNode()        {}
func (*Like) exprNode()           {}
func (*InExpr) exprNode()         {}
func (*Exists) exprNode()         {}
func (*Quant) exprNode()          {}
func (*ScalarSubquery) exprNode() {}
func (*FuncCall) exprNode()       {}
func (*CaseExpr) exprNode()       {}
