package sql

import (
	"fmt"
	"strings"
)

// Parser is a recursive-descent parser over the lexer's token stream.
type Parser struct {
	toks []Token
	pos  int
	src  string
}

// Parse parses one SELECT statement (optionally ending with a semicolon-free
// end of input).
func Parse(src string) (*SelectStmt, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	stmt, err := p.parseSelectStmt()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected %s after end of statement", p.peek())
	}
	return stmt, nil
}

// rowExpr is a parenthesized expression list "(a, b)"; it is only legal as
// the left side of IN or a quantified comparison and is rejected elsewhere.
type rowExpr struct{ items []Expr }

func (*rowExpr) astNode()  {}
func (*rowExpr) exprNode() {}

func (p *Parser) peek() Token   { return p.toks[p.pos] }
func (p *Parser) atEOF() bool   { return p.peek().Kind == TokEOF }
func (p *Parser) next() Token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *Parser) save() int     { return p.pos }
func (p *Parser) restore(m int) { p.pos = m }

func (p *Parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *Parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *Parser) isSymbol(s string) bool {
	t := p.peek()
	return t.Kind == TokSymbol && t.Text == s
}

func (p *Parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) acceptSymbol(s string) bool {
	if p.isSymbol(s) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *Parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errorf("expected %q, found %s", s, p.peek())
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return "", p.errorf("expected identifier, found %s", t)
	}
	p.pos++
	return t.Text, nil
}

// parseSelectStmt := body [ORDER BY orderList]
func (p *Parser) parseSelectStmt() (*SelectStmt, error) {
	body, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Body: body}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	return stmt, nil
}

// parseBody := core ((UNION [ALL] | INTERSECT | MINUS | EXCEPT) core)*
func (p *Parser) parseBody() (Body, error) {
	left, err := p.parseCore()
	if err != nil {
		return nil, err
	}
	for {
		var kind SetOpKind
		switch {
		case p.acceptKeyword("UNION"):
			kind = UnionOp
			if p.acceptKeyword("ALL") {
				kind = UnionAllOp
			}
		case p.acceptKeyword("INTERSECT"):
			kind = IntersectOp
		case p.acceptKeyword("MINUS"), p.acceptKeyword("EXCEPT"):
			kind = MinusOp
		default:
			return left, nil
		}
		right, err := p.parseCore()
		if err != nil {
			return nil, err
		}
		left = &SetOp{Kind: kind, Left: left, Right: right}
	}
}

// parseCore := SELECT ... | '(' body ')'
func (p *Parser) parseCore() (Body, error) {
	if p.acceptSymbol("(") {
		b, err := p.parseBody()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return b, nil
	}
	return p.parseSelect()
}

func (p *Parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		te, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, te)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		gb, err := p.parseGroupBy()
		if err != nil {
			return nil, err
		}
		sel.GroupBy = gb
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	return sel, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	// "ident.*"
	if p.peek().Kind == TokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokSymbol && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TokSymbol && p.toks[p.pos+2].Text == "*" {
		qual := p.next().Text
		p.next() // .
		p.next() // *
		return SelectItem{Star: true, Qual: qual}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	if r, ok := e.(*rowExpr); ok {
		_ = r
		return SelectItem{}, p.errorf("row expression not allowed in select list")
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.peek().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

// parseTableRef := tablePrimary (joinClause)*
func (p *Parser) parseTableRef() (TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		kind := InnerJoin
		switch {
		case p.isKeyword("JOIN"):
			p.next()
		case p.isKeyword("INNER"):
			p.next()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		case p.isKeyword("LEFT"):
			p.next()
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = LeftOuterJoin
		case p.isKeyword("RIGHT"):
			p.next()
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = RightOuterJoin
		case p.isKeyword("FULL"):
			p.next()
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = FullOuterJoin
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		left = &JoinExpr{Kind: kind, Left: left, Right: right, On: on}
	}
}

func (p *Parser) parseTablePrimary() (TableExpr, error) {
	if p.acceptSymbol("(") {
		sub, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		dt := &DerivedTable{Select: sub}
		p.acceptKeyword("AS")
		if p.peek().Kind == TokIdent {
			dt.Alias = p.next().Text
		}
		return dt, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	tn := &TableName{Name: name}
	p.acceptKeyword("AS")
	if p.peek().Kind == TokIdent {
		tn.Alias = p.next().Text
	}
	return tn, nil
}

func (p *Parser) parseGroupBy() (*GroupBy, error) {
	if p.acceptKeyword("ROLLUP") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		exprs, err := p.parseExprList()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &GroupBy{Exprs: exprs, Rollup: true}, nil
	}
	if p.acceptKeyword("GROUPING") {
		if err := p.expectKeyword("SETS"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		gb := &GroupBy{}
		for {
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			var set []Expr
			if !p.isSymbol(")") {
				var err error
				set, err = p.parseExprList()
				if err != nil {
					return nil, err
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			gb.Sets = append(gb.Sets, set)
			// Track the union of grouping columns in Exprs.
			for _, e := range set {
				if !containsExpr(gb.Exprs, e) {
					gb.Exprs = append(gb.Exprs, e)
				}
			}
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return gb, nil
	}
	exprs, err := p.parseExprList()
	if err != nil {
		return nil, err
	}
	return &GroupBy{Exprs: exprs}, nil
}

// containsExpr reports structural duplication of simple column refs; used
// only to dedupe GROUPING SETS union columns.
func containsExpr(list []Expr, e Expr) bool {
	ec, ok := e.(*ColRef)
	if !ok {
		return false
	}
	for _, x := range list {
		if xc, ok := x.(*ColRef); ok &&
			strings.EqualFold(xc.Qual, ec.Qual) && strings.EqualFold(xc.Name, ec.Name) {
			return true
		}
	}
	return false
}

func (p *Parser) parseExprList() ([]Expr, error) {
	var out []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, ok := e.(*rowExpr); ok {
			return nil, p.errorf("row expression not allowed here")
		}
		out = append(out, e)
		if !p.acceptSymbol(",") {
			return out, nil
		}
	}
}

// Expression grammar, loosest to tightest:
// expr := and (OR and)*
// and  := not (AND not)*
// not  := NOT not | predicate
// predicate := summand [postfix predicate operators]
// summand := factor (('+'|'-'|'||') factor)*
// factor := unary (('*'|'/') unary)*
// unary := '-' unary | primary

func (p *Parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		p.next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parsePredicate()
}

func (p *Parser) parsePredicate() (Expr, error) {
	if p.isKeyword("EXISTS") {
		p.next()
		sub, err := p.parseParenSubquery()
		if err != nil {
			return nil, err
		}
		return &Exists{Subquery: sub}, nil
	}
	left, err := p.parseSummand()
	if err != nil {
		return nil, err
	}
	leftItems := []Expr{left}
	if r, ok := left.(*rowExpr); ok {
		leftItems = r.items
	}
	// Postfix predicate forms.
	switch {
	case p.isKeyword("IS"):
		p.next()
		not := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		if len(leftItems) != 1 {
			return nil, p.errorf("IS NULL requires a single expression")
		}
		return &IsNull{E: leftItems[0], Not: not}, nil

	case p.isKeyword("NOT") || p.isKeyword("IN") || p.isKeyword("BETWEEN") || p.isKeyword("LIKE"):
		not := p.acceptKeyword("NOT")
		switch {
		case p.acceptKeyword("IN"):
			return p.parseInTail(leftItems, not)
		case p.acceptKeyword("BETWEEN"):
			if len(leftItems) != 1 {
				return nil, p.errorf("BETWEEN requires a single expression")
			}
			lo, err := p.parseSummand()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseSummand()
			if err != nil {
				return nil, err
			}
			return &Between{E: leftItems[0], Lo: lo, Hi: hi, Not: not}, nil
		case p.acceptKeyword("LIKE"):
			if len(leftItems) != 1 {
				return nil, p.errorf("LIKE requires a single expression")
			}
			pat, err := p.parseSummand()
			if err != nil {
				return nil, err
			}
			return &Like{E: leftItems[0], Pattern: pat, Not: not}, nil
		default:
			return nil, p.errorf("expected IN, BETWEEN or LIKE after NOT")
		}

	case p.peek().Kind == TokSymbol && isCmpOp(p.peek().Text):
		op := p.next().Text
		// Quantified comparison: op ANY|SOME|ALL (subquery).
		if p.isKeyword("ANY") || p.isKeyword("SOME") || p.isKeyword("ALL") {
			all := p.next().Text == "ALL"
			sub, err := p.parseParenSubquery()
			if err != nil {
				return nil, err
			}
			return &Quant{Op: op, All: all, Left: leftItems, Subquery: sub}, nil
		}
		if len(leftItems) != 1 {
			return nil, p.errorf("row expression requires a quantified comparison")
		}
		right, err := p.parseSummand()
		if err != nil {
			return nil, err
		}
		if r, ok := right.(*rowExpr); ok {
			_ = r
			return nil, p.errorf("row expression not allowed as comparison operand")
		}
		return &BinExpr{Op: op, L: leftItems[0], R: right}, nil
	}
	if len(leftItems) != 1 {
		return nil, p.errorf("dangling row expression")
	}
	return left, nil
}

func (p *Parser) parseInTail(left []Expr, not bool) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	if p.isKeyword("SELECT") || p.isSymbol("(") {
		sub, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{Left: left, Subquery: sub, Not: not}, nil
	}
	list, err := p.parseExprList()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if len(left) != 1 {
		return nil, p.errorf("row IN requires a subquery")
	}
	return &InExpr{Left: left, List: list, Not: not}, nil
}

func isCmpOp(s string) bool {
	switch s {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *Parser) parseSummand() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.isSymbol("+"):
			op = "+"
		case p.isSymbol("-"):
			op = "-"
		case p.isSymbol("||"):
			op = "||"
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseFactor() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.isSymbol("*"):
			op = "*"
		case p.isSymbol("/"):
			op = "/"
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	p.acceptSymbol("+")
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		return &NumLit{Text: t.Text, IsFloat: strings.Contains(t.Text, ".")}, nil
	case TokString:
		p.next()
		return &StrLit{Val: t.Text}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &NullLit{}, nil
		case "TRUE":
			p.next()
			return &BoolLit{Val: true}, nil
		case "FALSE":
			p.next()
			return &BoolLit{Val: false}, nil
		case "ROWNUM":
			p.next()
			return &Rownum{}, nil
		case "CASE":
			return p.parseCase()
		}
		return nil, p.errorf("unexpected keyword %s in expression", t.Text)
	case TokIdent:
		return p.parseIdentExpr()
	case TokParam:
		p.next()
		if t.Text != "" {
			return &Param{Name: t.Text}, nil
		}
		// Positional "?": the ordinal is its occurrence order in the token
		// stream, which is stable under parser backtracking.
		pos := 0
		for i := 0; i < p.pos-1; i++ {
			if p.toks[i].Kind == TokParam && p.toks[i].Text == "" {
				pos++
			}
		}
		return &Param{Pos: pos}, nil
	case TokSymbol:
		if t.Text == "(" {
			p.next()
			// Scalar subquery or parenthesized body?
			if p.isKeyword("SELECT") {
				sub, err := p.parseSelectStmt()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &ScalarSubquery{Subquery: sub}, nil
			}
			first, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.acceptSymbol(",") {
				items := []Expr{first}
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					items = append(items, e)
					if !p.acceptSymbol(",") {
						break
					}
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &rowExpr{items: items}, nil
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return first, nil
		}
	}
	return nil, p.errorf("unexpected %s in expression", t)
}

// parseIdentExpr parses column references (a, a.b) and function calls.
func (p *Parser) parseIdentExpr() (Expr, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	// Function call?
	if p.isSymbol("(") {
		p.next()
		fc := &FuncCall{Name: strings.ToUpper(name)}
		if p.acceptSymbol("*") {
			fc.Star = true
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			if p.acceptKeyword("OVER") {
				spec, err := p.parseWindowSpec()
				if err != nil {
					return nil, err
				}
				fc.Over = spec
			}
			return fc, nil
		}
		if p.acceptKeyword("DISTINCT") {
			fc.Distinct = true
		}
		if !p.isSymbol(")") {
			args, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			fc.Args = args
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if p.acceptKeyword("OVER") {
			spec, err := p.parseWindowSpec()
			if err != nil {
				return nil, err
			}
			fc.Over = spec
		}
		return fc, nil
	}
	// Qualified column?
	if p.isSymbol(".") {
		mark := p.save()
		p.next()
		if p.peek().Kind == TokIdent {
			col := p.next().Text
			return &ColRef{Qual: name, Name: col}, nil
		}
		if p.isKeyword("ROWNUM") {
			// t.rowid is spelled "rowid" (an identifier) but guard anyway.
			p.restore(mark)
		} else {
			p.restore(mark)
		}
	}
	return &ColRef{Name: name}, nil
}

func (p *Parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	ce := &CaseExpr{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, CaseWhen{Cond: cond, Result: res})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return ce, nil
}

// parseWindowSpec parses "( [PARTITION BY exprs] [ORDER BY items]
// [RANGE|ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW] )".
func (p *Parser) parseWindowSpec() (*WindowSpec, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	spec := &WindowSpec{}
	if p.acceptKeyword("PARTITION") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		exprs, err := p.parseExprList()
		if err != nil {
			return nil, err
		}
		spec.PartitionBy = exprs
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			spec.OrderBy = append(spec.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
		// The SQL default frame with ORDER BY is RANGE UNBOUNDED
		// PRECEDING .. CURRENT ROW.
		spec.Running = true
	}
	if p.isKeyword("RANGE") || p.isKeyword("ROWS") {
		p.next()
		// Only the running frame is supported; parse it strictly.
		if err := p.expectKeyword("BETWEEN"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("UNBOUNDED"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("PRECEDING"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("CURRENT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ROW"); err != nil {
			return nil, err
		}
		spec.Running = true
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return spec, nil
}

func (p *Parser) parseParenSubquery() (*SelectStmt, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	sub, err := p.parseSelectStmt()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return sub, nil
}
