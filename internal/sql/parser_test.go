package sql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestLexerBasics(t *testing.T) {
	toks, err := LexAll("SELECT e.name, 'it''s', 3.14 FROM emp -- comment\n/* block */ WHERE a <= b")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.Kind == TokEOF {
			break
		}
		texts = append(texts, tk.Text)
	}
	want := []string{"SELECT", "e", ".", "name", ",", "it's", ",", "3.14", "FROM", "emp", "WHERE", "a", "<=", "b"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Errorf("tokens = %v, want %v", texts, want)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := LexAll("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string should error")
	}
	if _, err := LexAll("SELECT @"); err == nil {
		t.Error("bad character should error")
	}
}

func TestLexerNotEquals(t *testing.T) {
	toks, err := LexAll("a != b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Text != "<>" {
		t.Errorf("!= should normalize to <>, got %q", toks[1].Text)
	}
}

func TestParseSimpleSelect(t *testing.T) {
	stmt := mustParse(t, "SELECT e.name, e.salary FROM employees e WHERE e.dept_id = 10")
	sel := stmt.Body.(*Select)
	if len(sel.Items) != 2 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	if sel.Items[0].Expr.(*ColRef).Qual != "e" || sel.Items[0].Expr.(*ColRef).Name != "name" {
		t.Error("first item should be e.name")
	}
	tn := sel.From[0].(*TableName)
	if tn.Name != "employees" || tn.Alias != "e" {
		t.Errorf("from = %+v", tn)
	}
	cmp := sel.Where.(*BinExpr)
	if cmp.Op != "=" {
		t.Errorf("where op = %s", cmp.Op)
	}
}

func TestParsePaperQ1(t *testing.T) {
	// The paper's motivating query Q1: two nested subqueries.
	stmt := mustParse(t, `
SELECT e1.employee_name, j.job_title
FROM employees e1, job_history j
WHERE e1.emp_id = j.emp_id and
  j.start_date > '19980101' and
  e1.salary >
  (SELECT AVG(e2.salary)
   FROM employees e2
   WHERE e2.dept_id = e1.dept_id) and
  e1.dept_id IN
  (SELECT dept_id
   FROM departments d, locations l
   WHERE d.loc_id = l.loc_id and l.country_id = 'US')`)
	sel := stmt.Body.(*Select)
	if len(sel.From) != 2 {
		t.Fatalf("from count = %d", len(sel.From))
	}
	// The WHERE is a chain of ANDs; walk it to find the subqueries.
	var nScalar, nIn int
	var walk func(e Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *BinExpr:
			walk(v.L)
			walk(v.R)
			if v.Op == ">" {
				if _, ok := v.R.(*ScalarSubquery); ok {
					nScalar++
				}
			}
		case *InExpr:
			if v.Subquery != nil {
				nIn++
			}
		}
	}
	walk(sel.Where)
	if nScalar != 1 || nIn != 1 {
		t.Errorf("scalar subqueries = %d, IN subqueries = %d; want 1, 1", nScalar, nIn)
	}
}

func TestParseExistsAndQuant(t *testing.T) {
	stmt := mustParse(t, `
SELECT d.name FROM departments d
WHERE EXISTS (SELECT 1 FROM employees e WHERE e.dept_id = d.dept_id)
  AND NOT EXISTS (SELECT 1 FROM jobs j WHERE j.dept_id = d.dept_id)
  AND d.budget > ALL (SELECT e.salary FROM employees e)
  AND d.head_count = ANY (SELECT 1 FROM dual x)`)
	sel := stmt.Body.(*Select)
	var nEx, nNotEx, nAll, nAny int
	var walk func(e Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *BinExpr:
			walk(v.L)
			walk(v.R)
		case *NotExpr:
			walk(v.E)
			if ex, ok := v.E.(*Exists); ok && !ex.Not {
				nNotEx++
			}
		case *Exists:
			nEx++
		case *Quant:
			if v.All {
				nAll++
			} else {
				nAny++
			}
		}
	}
	walk(sel.Where)
	if nEx != 2 || nNotEx != 1 || nAll != 1 || nAny != 1 {
		t.Errorf("exists=%d notexists=%d all=%d any=%d", nEx, nNotEx, nAll, nAny)
	}
}

func TestParseRowIn(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE (t.a, t.b) IN (SELECT x, y FROM u)`)
	sel := stmt.Body.(*Select)
	in := sel.Where.(*InExpr)
	if len(in.Left) != 2 || in.Subquery == nil {
		t.Errorf("row IN: left=%d subquery=%v", len(in.Left), in.Subquery != nil)
	}
}

func TestParseInList(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE c IN ('UK', 'US') AND d NOT IN (1, 2, 3)`)
	sel := stmt.Body.(*Select)
	and := sel.Where.(*BinExpr)
	in1 := and.L.(*InExpr)
	if len(in1.List) != 2 || in1.Not {
		t.Errorf("first IN: %+v", in1)
	}
	in2 := and.R.(*InExpr)
	if len(in2.List) != 3 || !in2.Not {
		t.Errorf("second IN: %+v", in2)
	}
}

func TestParseJoins(t *testing.T) {
	stmt := mustParse(t, `
SELECT e.name FROM employees e
LEFT OUTER JOIN departments d ON e.dept_id = d.dept_id
JOIN locations l ON d.loc_id = l.loc_id`)
	sel := stmt.Body.(*Select)
	j := sel.From[0].(*JoinExpr)
	if j.Kind != InnerJoin {
		t.Error("outermost join should be the inner join")
	}
	lj := j.Left.(*JoinExpr)
	if lj.Kind != LeftOuterJoin {
		t.Error("inner-left should be the left outer join")
	}
}

func TestParseSetOps(t *testing.T) {
	stmt := mustParse(t, `
SELECT a FROM t UNION ALL SELECT b FROM u UNION SELECT c FROM v MINUS SELECT d FROM w`)
	// Left-associative: ((t UNION ALL u) UNION v) MINUS w.
	so := stmt.Body.(*SetOp)
	if so.Kind != MinusOp {
		t.Fatalf("top op = %v", so.Kind)
	}
	so2 := so.Left.(*SetOp)
	if so2.Kind != UnionOp {
		t.Fatalf("second op = %v", so2.Kind)
	}
	so3 := so2.Left.(*SetOp)
	if so3.Kind != UnionAllOp {
		t.Fatalf("third op = %v", so3.Kind)
	}
}

func TestParseIntersectAndExcept(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t INTERSECT SELECT b FROM u`)
	if stmt.Body.(*SetOp).Kind != IntersectOp {
		t.Error("INTERSECT")
	}
	stmt = mustParse(t, `SELECT a FROM t EXCEPT SELECT b FROM u`)
	if stmt.Body.(*SetOp).Kind != MinusOp {
		t.Error("EXCEPT should parse as MINUS")
	}
}

func TestParseDerivedTableAndRownum(t *testing.T) {
	stmt := mustParse(t, `
SELECT v.a FROM (SELECT t.a FROM t ORDER BY t.create_date) v WHERE rownum < 20`)
	sel := stmt.Body.(*Select)
	dt := sel.From[0].(*DerivedTable)
	if dt.Alias != "v" {
		t.Errorf("alias = %q", dt.Alias)
	}
	if len(dt.Select.OrderBy) != 1 {
		t.Error("view order by missing")
	}
	cmp := sel.Where.(*BinExpr)
	if _, ok := cmp.L.(*Rownum); !ok {
		t.Error("rownum comparison")
	}
}

func TestParseGroupByHaving(t *testing.T) {
	stmt := mustParse(t, `
SELECT e.dept_id, AVG(e.salary) avg_sal FROM employees e
GROUP BY e.dept_id HAVING AVG(e.salary) > 100 ORDER BY avg_sal DESC`)
	sel := stmt.Body.(*Select)
	if len(sel.GroupBy.Exprs) != 1 || sel.GroupBy.Rollup {
		t.Errorf("group by = %+v", sel.GroupBy)
	}
	if sel.Having == nil {
		t.Error("having missing")
	}
	if sel.Items[1].Alias != "avg_sal" {
		t.Errorf("alias = %q", sel.Items[1].Alias)
	}
	if len(stmt.OrderBy) != 1 || !stmt.OrderBy[0].Desc {
		t.Error("order by desc")
	}
}

func TestParseRollupAndGroupingSets(t *testing.T) {
	stmt := mustParse(t, `
SELECT country_id, state_id, SUM(amount) FROM sales
GROUP BY ROLLUP(country_id, state_id)`)
	gb := stmt.Body.(*Select).GroupBy
	if !gb.Rollup || len(gb.Exprs) != 2 {
		t.Errorf("rollup = %+v", gb)
	}
	stmt = mustParse(t, `
SELECT a, b, COUNT(*) FROM t GROUP BY GROUPING SETS ((a, b), (a), ())`)
	gb = stmt.Body.(*Select).GroupBy
	if len(gb.Sets) != 3 {
		t.Fatalf("sets = %d", len(gb.Sets))
	}
	if len(gb.Sets[0]) != 2 || len(gb.Sets[1]) != 1 || len(gb.Sets[2]) != 0 {
		t.Errorf("set sizes = %d,%d,%d", len(gb.Sets[0]), len(gb.Sets[1]), len(gb.Sets[2]))
	}
	if len(gb.Exprs) != 2 {
		t.Errorf("union of grouping columns = %d, want 2", len(gb.Exprs))
	}
}

func TestParseAggregates(t *testing.T) {
	stmt := mustParse(t, `SELECT COUNT(*), COUNT(DISTINCT a), SUM(b + 1), MIN(c), MAX(d), AVG(e) FROM t`)
	items := stmt.Body.(*Select).Items
	if !items[0].Expr.(*FuncCall).Star {
		t.Error("COUNT(*)")
	}
	if !items[1].Expr.(*FuncCall).Distinct {
		t.Error("COUNT(DISTINCT)")
	}
	if items[2].Expr.(*FuncCall).Name != "SUM" {
		t.Error("SUM")
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE a + b * c = d AND e = 1 OR f = 2`)
	// OR at top.
	or := stmt.Body.(*Select).Where.(*BinExpr)
	if or.Op != "OR" {
		t.Fatalf("top = %s", or.Op)
	}
	and := or.L.(*BinExpr)
	if and.Op != "AND" {
		t.Fatalf("left of OR = %s", and.Op)
	}
	eq := and.L.(*BinExpr)
	if eq.Op != "=" {
		t.Fatalf("comparison = %s", eq.Op)
	}
	add := eq.L.(*BinExpr)
	if add.Op != "+" {
		t.Fatalf("lhs = %s", add.Op)
	}
	mul := add.R.(*BinExpr)
	if mul.Op != "*" {
		t.Fatalf("b*c = %s", mul.Op)
	}
}

func TestParseBetweenLikeIsNull(t *testing.T) {
	stmt := mustParse(t, `
SELECT a FROM t
WHERE a BETWEEN 1 AND 10 AND b NOT BETWEEN 2 AND 3
  AND c LIKE 'x%' AND d NOT LIKE '%y'
  AND e IS NULL AND f IS NOT NULL`)
	var nBetween, nLike, nIsNull int
	var walk func(e Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *BinExpr:
			walk(v.L)
			walk(v.R)
		case *Between:
			nBetween++
		case *Like:
			nLike++
		case *IsNull:
			nIsNull++
		}
	}
	walk(stmt.Body.(*Select).Where)
	if nBetween != 2 || nLike != 2 || nIsNull != 2 {
		t.Errorf("between=%d like=%d isnull=%d", nBetween, nLike, nIsNull)
	}
}

func TestParseCase(t *testing.T) {
	stmt := mustParse(t, `
SELECT CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' END lbl FROM t`)
	ce := stmt.Body.(*Select).Items[0].Expr.(*CaseExpr)
	if len(ce.Whens) != 2 || ce.Else == nil {
		t.Errorf("case = %+v", ce)
	}
}

func TestParseStar(t *testing.T) {
	stmt := mustParse(t, `SELECT *, t.* FROM t`)
	items := stmt.Body.(*Select).Items
	if !items[0].Star || items[0].Qual != "" {
		t.Error("bare star")
	}
	if !items[1].Star || items[1].Qual != "t" {
		t.Error("qualified star")
	}
}

func TestParseParenthesizedSetOp(t *testing.T) {
	stmt := mustParse(t, `(SELECT a FROM t UNION SELECT b FROM u) MINUS SELECT c FROM v`)
	so := stmt.Body.(*SetOp)
	if so.Kind != MinusOp {
		t.Fatal("top should be MINUS")
	}
	if so.Left.(*SetOp).Kind != UnionOp {
		t.Fatal("left should be the parenthesized UNION")
	}
}

func TestParseScalarSubqueryInSelect(t *testing.T) {
	stmt := mustParse(t, `SELECT (SELECT MAX(x) FROM u) m, a FROM t`)
	if _, ok := stmt.Body.(*Select).Items[0].Expr.(*ScalarSubquery); !ok {
		t.Error("scalar subquery in select list")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t extra junk ~",
		"SELECT a FROM t WHERE a IN",
		"SELECT a FROM t WHERE (a, b) = 1",
		"SELECT a FROM t WHERE (a, b) IN (1, 2)",
		"SELECT (a, b) FROM t",
		"SELECT a FROM t WHERE a BETWEEN 1",
		"SELECT CASE END FROM t",
		"SELECT a FROM t WHERE EXISTS t",
		"SELECT a FROM t JOIN u",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseUnaryMinusAndArith(t *testing.T) {
	stmt := mustParse(t, `SELECT -a + 2, 'x' || 'y' FROM t WHERE a / 2 > -3`)
	items := stmt.Body.(*Select).Items
	add := items[0].Expr.(*BinExpr)
	if add.Op != "+" {
		t.Error("unary minus binds tighter than +")
	}
	if _, ok := add.L.(*UnaryExpr); !ok {
		t.Error("-a should be unary")
	}
	concat := items[1].Expr.(*BinExpr)
	if concat.Op != "||" {
		t.Error("concat")
	}
}

func TestParsePaperQ12(t *testing.T) {
	// Q12 shape: distinct view joined to outer tables.
	stmt := mustParse(t, `
SELECT e1.employee_name, j.job_title
FROM employees e1, job_history j,
     (SELECT DISTINCT d.dept_id
      FROM departments d, locations l
      WHERE d.loc_id = l.loc_id AND l.country_id IN ('UK', 'US')) V
WHERE e1.dept_id = V.dept_id AND e1.emp_id = j.emp_id
  AND j.start_date > '19980101'`)
	sel := stmt.Body.(*Select)
	if len(sel.From) != 3 {
		t.Fatalf("from = %d", len(sel.From))
	}
	dt := sel.From[2].(*DerivedTable)
	if !dt.Select.Body.(*Select).Distinct {
		t.Error("view should be DISTINCT")
	}
}

func TestParseWindowFunctions(t *testing.T) {
	stmt := mustParse(t, `
SELECT acct_id, AVG(balance) OVER (PARTITION BY acct_id ORDER BY time
  RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) ravg,
  COUNT(*) OVER (PARTITION BY acct_id) cnt,
  ROW_NUMBER() OVER (ORDER BY balance DESC) rn
FROM accounts`)
	items := stmt.Body.(*Select).Items
	w1 := items[1].Expr.(*FuncCall)
	if w1.Over == nil || len(w1.Over.PartitionBy) != 1 || len(w1.Over.OrderBy) != 1 || !w1.Over.Running {
		t.Errorf("running avg window: %+v", w1.Over)
	}
	w2 := items[2].Expr.(*FuncCall)
	if w2.Over == nil || !w2.Star || len(w2.Over.PartitionBy) != 1 || w2.Over.Running {
		t.Errorf("count(*) window: %+v", w2.Over)
	}
	w3 := items[3].Expr.(*FuncCall)
	if w3.Over == nil || w3.Name != "ROW_NUMBER" || !w3.Over.OrderBy[0].Desc {
		t.Errorf("row_number window: %+v", w3.Over)
	}
}

func TestParseWindowErrors(t *testing.T) {
	bad := []string{
		`SELECT AVG(x) OVER FROM t`,
		`SELECT AVG(x) OVER (ROWS BETWEEN CURRENT ROW AND CURRENT ROW) FROM t`,
		`SELECT AVG(x) OVER (PARTITION x) FROM t`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("should fail: %s", src)
		}
	}
}
