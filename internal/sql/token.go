// Package sql implements the SQL frontend: lexer, abstract syntax tree and
// recursive-descent parser for the SQL dialect used throughout the paper —
// SELECT with DISTINCT, inline views, ANSI LEFT OUTER JOIN, correlated
// subqueries (IN / NOT IN / EXISTS / NOT EXISTS / ANY / ALL / scalar),
// GROUP BY (including ROLLUP), HAVING, ORDER BY, UNION [ALL], INTERSECT,
// MINUS, and Oracle's ROWNUM.
package sql

import "fmt"

// TokKind classifies a lexical token.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokSymbol // punctuation and operators: ( ) , . + - * / = <> < <= > >= ||
	TokParam  // bind parameter: ":name" (Text = name) or "?" (Text = "")
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string // keywords are upper-cased; identifiers keep original case
	Pos  int    // byte offset in the input
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	case TokParam:
		if t.Text == "" {
			return "?"
		}
		return ":" + t.Text
	default:
		return t.Text
	}
}

// keywords is the set of reserved words. Everything else is an identifier.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "DISTINCT": true, "ALL": true, "ANY": true,
	"SOME": true, "IN": true, "EXISTS": true, "NOT": true, "AND": true,
	"OR": true, "NULL": true, "IS": true, "BETWEEN": true, "LIKE": true,
	"UNION": true, "INTERSECT": true, "MINUS": true, "EXCEPT": true,
	"JOIN": true, "LEFT": true, "RIGHT": true, "FULL": true, "OUTER": true,
	"INNER": true, "ON": true, "AS": true, "ASC": true, "DESC": true,
	"ROWNUM": true, "ROLLUP": true, "GROUPING": true, "SETS": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"TRUE": true, "FALSE": true,
	// Window functions.
	"OVER": true, "PARTITION": true, "ROWS": true, "RANGE": true,
	"UNBOUNDED": true, "PRECEDING": true, "CURRENT": true, "ROW": true,
	// DML.
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true,
}
