package sql

// DML statement grammar:
//
//	INSERT INTO t [(c1, ...)] VALUES (e1, ...) [, (e1, ...)]...
//	INSERT INTO t [(c1, ...)] SELECT ...
//	UPDATE t [alias] SET c1 = e1 [, c2 = e2]... [WHERE cond]
//	DELETE FROM t [alias] [WHERE cond]
//
// UPDATE and DELETE target rows are located by the same expression grammar
// as SELECT, including subqueries and bind parameters.

// Stmt is any top-level statement: *SelectStmt, *InsertStmt, *UpdateStmt,
// or *DeleteStmt.
type Stmt interface {
	Node
	stmtNode()
}

// InsertStmt is INSERT INTO. Exactly one of Rows (the VALUES form) or
// Query (the INSERT ... SELECT form) is set.
type InsertStmt struct {
	Table string
	Cols  []string // explicit target column list; nil means all columns
	Rows  [][]Expr
	Query *SelectStmt
}

// SetClause is one "col = expr" assignment of an UPDATE.
type SetClause struct {
	Col string
	Val Expr
}

// UpdateStmt is UPDATE ... SET ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Alias string
	Set   []SetClause
	Where Expr
}

// DeleteStmt is DELETE FROM ... [WHERE ...].
type DeleteStmt struct {
	Table string
	Alias string
	Where Expr
}

func (*InsertStmt) astNode() {}
func (*UpdateStmt) astNode() {}
func (*DeleteStmt) astNode() {}

func (*SelectStmt) stmtNode() {}
func (*InsertStmt) stmtNode() {}
func (*UpdateStmt) stmtNode() {}
func (*DeleteStmt) stmtNode() {}

// ParseStatement parses one statement of any kind (query or DML).
func ParseStatement(src string) (Stmt, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	var stmt Stmt
	switch {
	case p.isKeyword("INSERT"):
		stmt, err = p.parseInsert()
	case p.isKeyword("UPDATE"):
		stmt, err = p.parseUpdate()
	case p.isKeyword("DELETE"):
		stmt, err = p.parseDelete()
	default:
		stmt, err = p.parseSelectStmt()
	}
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected %s after end of statement", p.peek())
	}
	return stmt, nil
}

func (p *Parser) parseInsert() (*InsertStmt, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	// Optional target column list. Disambiguate from a VALUES-less SELECT
	// by requiring "(" followed by an identifier list.
	if p.isSymbol("(") {
		mark := p.save()
		p.next()
		cols, ok := p.tryIdentList()
		if ok {
			stmt.Cols = cols
		} else {
			p.restore(mark)
		}
	}
	switch {
	case p.acceptKeyword("VALUES"):
		for {
			row, err := p.parseValuesRow()
			if err != nil {
				return nil, err
			}
			stmt.Rows = append(stmt.Rows, row)
			if !p.acceptSymbol(",") {
				break
			}
		}
	case p.isKeyword("SELECT") || p.isSymbol("("):
		q, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		stmt.Query = q
	default:
		return nil, p.errorf("expected VALUES or SELECT, found %s", p.peek())
	}
	return stmt, nil
}

// tryIdentList parses "ident [, ident]... )" and reports success; on
// failure the caller restores the saved position.
func (p *Parser) tryIdentList() ([]string, bool) {
	var cols []string
	for {
		t := p.peek()
		if t.Kind != TokIdent {
			return nil, false
		}
		p.next()
		cols = append(cols, t.Text)
		if p.acceptSymbol(")") {
			return cols, true
		}
		if !p.acceptSymbol(",") {
			return nil, false
		}
	}
}

func (p *Parser) parseValuesRow() ([]Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var row []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		row = append(row, e)
		if p.acceptSymbol(")") {
			return row, nil
		}
		if err := p.expectSymbol(","); err != nil {
			return nil, err
		}
	}
}

func (p *Parser) parseUpdate() (*UpdateStmt, error) {
	p.next() // UPDATE
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: table}
	if p.peek().Kind == TokIdent {
		stmt.Alias = p.next().Text
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, SetClause{Col: col, Val: val})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *Parser) parseDelete() (*DeleteStmt, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: table}
	if p.peek().Kind == TokIdent {
		stmt.Alias = p.next().Text
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}
