package chaosnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/testkit"
)

// echoServer is a plain TCP echo peer for proxy tests. Close severs every
// accepted connection so relay goroutines drain.
type echoServer struct {
	l  net.Listener
	mu sync.Mutex
	cs []net.Conn
	wg sync.WaitGroup
}

func startEcho(t *testing.T) *echoServer {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	e := &echoServer{l: l}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			e.mu.Lock()
			e.cs = append(e.cs, c)
			e.mu.Unlock()
			e.wg.Add(1)
			go func() {
				defer e.wg.Done()
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	t.Cleanup(e.close)
	return e
}

func (e *echoServer) close() {
	e.l.Close()
	e.mu.Lock()
	for _, c := range e.cs {
		c.Close()
	}
	e.mu.Unlock()
	e.wg.Wait()
}

func startProxy(t *testing.T, cfg Config) *Proxy {
	t.Helper()
	p, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// roundTrip writes msg and reads back exactly len(msg) bytes.
func roundTrip(c net.Conn, msg []byte) ([]byte, error) {
	if _, err := c.Write(msg); err != nil {
		return nil, err
	}
	got := make([]byte, len(msg))
	_, err := io.ReadFull(c, got)
	return got, err
}

func TestCleanRelay(t *testing.T) {
	testkit.LeakCheck(t)
	echo := startEcho(t)
	p := startProxy(t, Config{Target: echo.l.Addr().String()}) // FaultEvery 0: clean

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := bytes.Repeat([]byte("relay"), 2000)
	got, err := roundTrip(c, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("clean relay corrupted the stream")
	}
	if len(p.Events()) != 0 {
		t.Fatalf("clean relay fired faults: %v", p.Events())
	}
	if p.Conns() != 1 {
		t.Fatalf("conns = %d, want 1", p.Conns())
	}
}

// TestPlanDeterministic pins the heart of the harness: the fault schedule
// is a pure function of seed and accept index.
func TestPlanDeterministic(t *testing.T) {
	mk := func(seed int64) *Proxy {
		return &Proxy{cfg: Config{Seed: seed, FaultEvery: 2, Kinds: AllKinds(), MaxFaultBytes: 4096}}
	}
	a, b, c := mk(7), mk(7), mk(8)
	var differ bool
	for idx := 0; idx < 200; idx++ {
		pa, pb, pc := a.planFor(idx), b.planFor(idx), c.planFor(idx)
		if (idx+1)%2 != 0 {
			if pa != nil {
				t.Fatalf("conn %d: faulted off-schedule", idx)
			}
			continue
		}
		if pa == nil || pb == nil {
			t.Fatalf("conn %d: scheduled fault missing", idx)
		}
		if *pa != *pb {
			t.Fatalf("conn %d: same seed, different plans: %+v vs %+v", idx, pa, pb)
		}
		if pc == nil || *pa != *pc {
			differ = true
		}
	}
	if !differ {
		t.Fatal("different seeds produced identical schedules")
	}
}

// resetPlan builds a proxy whose every connection suffers the given kind at
// byte offset 0 (MaxFaultBytes 1 forces offset 0).
func faultAll(t *testing.T, target string, kind Kind, extra Config) *Proxy {
	t.Helper()
	cfg := extra
	cfg.Target = target
	cfg.Seed = 1
	cfg.FaultEvery = 1
	cfg.Kinds = []Kind{kind}
	cfg.MaxFaultBytes = 1
	return startProxy(t, cfg)
}

func TestResetAtAccept(t *testing.T) {
	testkit.LeakCheck(t)
	echo := startEcho(t)
	reg := obsv.NewRegistry()
	p := faultAll(t, echo.l.Addr().String(), KindReset, Config{Registry: reg})

	// The connection dies before any byte crosses. The RST may land while
	// the dial is still completing (a failed dial) or just after (a failed
	// round trip) — either way no data moves.
	if c, err := net.Dial("tcp", p.Addr()); err == nil {
		defer c.Close()
		c.SetDeadline(time.Now().Add(2 * time.Second))
		if _, err := roundTrip(c, []byte("doomed")); err == nil {
			t.Fatal("reset connection completed a round trip")
		}
	}
	ev := p.Events()
	if len(ev) != 1 || ev[0].Kind != KindReset || ev[0].Dir != "accept" {
		t.Fatalf("events = %v, want one accept reset", ev)
	}
	if reg.CounterValue(MetricFaults) != 1 || reg.CounterValue(MetricKindPrefix+"reset") != 1 {
		t.Fatalf("fault counters not published: %v", reg.Snapshot().Counters)
	}
}

func TestTruncateCutsTheStream(t *testing.T) {
	testkit.LeakCheck(t)
	echo := startEcho(t)
	p := faultAll(t, echo.l.Addr().String(), KindTruncate, Config{})

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	msg := bytes.Repeat([]byte("x"), 4096)
	c.Write(msg)
	// Offset 0 truncation: nothing (or at most the pre-offset bytes) comes
	// back before a clean close.
	n, _ := io.Copy(io.Discard, c)
	if n >= int64(len(msg)) {
		t.Fatalf("truncated stream delivered all %d bytes", n)
	}
	ev := p.Events()
	if len(ev) != 1 || ev[0].Kind != KindTruncate {
		t.Fatalf("events = %v, want one truncate", ev)
	}
}

func TestDelaySpikesLatency(t *testing.T) {
	testkit.LeakCheck(t)
	echo := startEcho(t)
	const spike = 150 * time.Millisecond
	p := faultAll(t, echo.l.Addr().String(), KindDelay, Config{Delay: spike})

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	got, err := roundTrip(c, []byte("slow boat"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "slow boat" {
		t.Fatal("delay fault corrupted the stream")
	}
	if d := time.Since(start); d < spike {
		t.Fatalf("round trip took %v, want >= %v spike", d, spike)
	}
	// One spike only: the second round trip is fast.
	start = time.Now()
	if _, err := roundTrip(c, []byte("fast boat")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d >= spike {
		t.Fatalf("second round trip took %v; the spike must fire once", d)
	}
	ev := p.Events()
	if len(ev) != 1 || ev[0].Kind != KindDelay {
		t.Fatalf("events = %v, want one delay", ev)
	}
}

func TestBlackholeStallsUntilClose(t *testing.T) {
	testkit.LeakCheck(t)
	echo := startEcho(t)
	p := faultAll(t, echo.l.Addr().String(), KindBlackhole, Config{})

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("into the void")); err != nil {
		t.Fatal(err)
	}
	// Whichever direction is blackholed, the echo never arrives: the read
	// must hit its own deadline, not return data.
	c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 64)
	if n, err := c.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read through a blackhole returned (%d, %v), want deadline", n, err)
	}
	ev := p.Events()
	if len(ev) != 1 || ev[0].Kind != KindBlackhole {
		t.Fatalf("events = %v, want one blackhole", ev)
	}
	// Close must sever the blackholed relay and drain its goroutines —
	// LeakCheck enforces the drain.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseUnderLoad closes the proxy while connections are mid-flight and
// relies on LeakCheck to prove no relay goroutine survives.
func TestCloseUnderLoad(t *testing.T) {
	testkit.LeakCheck(t)
	echo := startEcho(t)
	p := startProxy(t, Config{Target: echo.l.Addr().String(), Seed: 3, FaultEvery: 2})

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := net.Dial("tcp", p.Addr())
			if err != nil {
				return
			}
			defer c.Close()
			c.SetDeadline(time.Now().Add(2 * time.Second))
			for j := 0; j < 50; j++ {
				if _, err := roundTrip(c, []byte("under load")); err != nil {
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}
