// Package chaosnet is the wire-level arm of the fault-injection story:
// where package faultinject fires faults inside the optimize path, chaosnet
// injects them between client and server. It is a TCP proxy that forwards
// bytes between each accepted connection and a target address, and — on a
// deterministic, seed-driven schedule — resets connections, truncates
// streams mid-frame, injects latency spikes, or blackholes a direction
// entirely.
//
// Determinism: whether and how a connection is faulted is a pure function
// of (Config.Seed, the connection's accept index, and the byte offsets of
// its streams). Nothing depends on the wall clock, so a soak test replays
// the same fault schedule at every run; only the interleaving of concurrent
// connections varies.
//
// Fault sites (the chaos analogue of faultinject's site names):
//
//	accept        the connection is reset before any byte is proxied
//	c2s           the client→server direction faults at a byte offset
//	s2c           the server→client direction faults at a byte offset
//
// Kinds:
//
//	reset         both sides are closed abruptly (RST where possible)
//	truncate      bytes up to the offset are delivered, then a clean close
//	              — the peer sees a frame cut mid-payload
//	delay         one latency spike of Config.Delay at the offset
//	blackhole     forwarding in the faulted direction stops silently; the
//	              stalled peer's own deadline must end the exchange
package chaosnet

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/obsv"
)

// Kind selects what a scheduled wire fault does.
type Kind int

// The wire fault kinds.
const (
	KindReset Kind = iota
	KindTruncate
	KindDelay
	KindBlackhole
)

var kindNames = [...]string{
	KindReset: "reset", KindTruncate: "truncate",
	KindDelay: "delay", KindBlackhole: "blackhole",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// AllKinds is the default fault mix.
func AllKinds() []Kind { return []Kind{KindReset, KindTruncate, KindDelay, KindBlackhole} }

// Metric names published to the registry.
const (
	MetricConns  = "chaosnet.conns"
	MetricFaults = "chaosnet.faults"
	// MetricKindPrefix prefixes the per-kind fault counters
	// ("chaosnet.kind.reset").
	MetricKindPrefix = "chaosnet.kind."
)

// Config assembles a Proxy.
type Config struct {
	// Target is the real server's address.
	Target string
	// Seed drives the deterministic fault schedule.
	Seed int64
	// FaultEvery faults every Nth accepted connection (0 = no faults:
	// the proxy is a clean relay).
	FaultEvery int
	// Kinds is the enabled fault mix (nil = AllKinds).
	Kinds []Kind
	// Delay is the latency-spike magnitude for KindDelay (0 = 50ms).
	Delay time.Duration
	// MaxFaultBytes bounds the byte offset at which a stream fault
	// triggers — drawn uniformly from [0, MaxFaultBytes) (0 = 4096). An
	// offset of 0 faults the accept site itself for KindReset.
	MaxFaultBytes int64
	// Registry receives the chaosnet.* counters (nil = none).
	Registry *obsv.Registry
}

// Event records one fault that fired, for test assertions.
type Event struct {
	Conn  int    // accept index
	Kind  Kind   //
	Dir   string // "accept", "c2s" or "s2c"
	After int64  // byte offset at which the fault fired
}

// plan is one connection's predetermined fault.
type plan struct {
	kind  Kind
	dir   string // "c2s" or "s2c"
	after int64
}

// Proxy is the chaos relay. Start it with Start; stop it with Close.
type Proxy struct {
	cfg Config
	l   net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	events []Event
	nconn  int
	closed bool

	wg sync.WaitGroup

	connsCtr  *obsv.Counter
	faultsCtr *obsv.Counter
}

// Start listens on a fresh loopback port and relays to cfg.Target.
func Start(cfg Config) (*Proxy, error) {
	if cfg.Delay <= 0 {
		cfg.Delay = 50 * time.Millisecond
	}
	if cfg.MaxFaultBytes <= 0 {
		cfg.MaxFaultBytes = 4096
	}
	if cfg.Kinds == nil {
		cfg.Kinds = AllKinds()
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:       cfg,
		l:         l,
		conns:     map[net.Conn]struct{}{},
		connsCtr:  cfg.Registry.Counter(MetricConns),
		faultsCtr: cfg.Registry.Counter(MetricFaults),
	}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr is the proxy's listen address — point clients here.
func (p *Proxy) Addr() string { return p.l.Addr().String() }

// Events returns the faults fired so far, in firing order.
func (p *Proxy) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.events...)
}

// Conns reports how many connections the proxy has accepted.
func (p *Proxy) Conns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nconn
}

// Close stops accepting, severs every proxied connection (including
// blackholed ones) and waits for the relay goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	err := p.l.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) serve() {
	defer p.wg.Done()
	for {
		client, err := p.l.Accept()
		if err != nil {
			return // listener closed by Close
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			return
		}
		idx := p.nconn
		p.nconn++
		p.conns[client] = struct{}{}
		p.mu.Unlock()
		p.connsCtr.Inc()

		p.wg.Add(1)
		go p.relay(client, idx)
	}
}

// planFor computes the connection's fault deterministically from the seed
// and accept index.
func (p *Proxy) planFor(idx int) *plan {
	if p.cfg.FaultEvery <= 0 || (idx+1)%p.cfg.FaultEvery != 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(p.cfg.Seed + int64(idx)*1009))
	pl := &plan{
		kind:  p.cfg.Kinds[rng.Intn(len(p.cfg.Kinds))],
		after: rng.Int63n(p.cfg.MaxFaultBytes),
	}
	if rng.Intn(2) == 0 {
		pl.dir = "c2s"
	} else {
		pl.dir = "s2c"
	}
	return pl
}

// record notes a fired fault.
func (p *Proxy) record(e Event) {
	p.mu.Lock()
	p.events = append(p.events, e)
	p.mu.Unlock()
	p.faultsCtr.Inc()
	p.cfg.Registry.Counter(MetricKindPrefix + e.Kind.String()).Inc()
}

// track registers a server-side conn for Close-time severing.
func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// relay proxies one client connection to the target, applying the
// connection's fault plan.
func (p *Proxy) relay(client net.Conn, idx int) {
	defer p.wg.Done()
	pl := p.planFor(idx)

	// A reset scheduled at offset 0 fires at the accept site: the client
	// is refused before the server ever sees the connection.
	if pl != nil && pl.kind == KindReset && pl.after == 0 {
		p.record(Event{Conn: idx, Kind: KindReset, Dir: "accept"})
		abortConn(client)
		p.untrack(client)
		return
	}

	server, err := net.DialTimeout("tcp", p.cfg.Target, 10*time.Second)
	if err != nil {
		client.Close()
		p.untrack(client)
		return
	}
	p.track(server)

	var once sync.Once
	closeBoth := func() {
		once.Do(func() {
			client.Close()
			server.Close()
			p.untrack(client)
			p.untrack(server)
		})
	}
	abortBoth := func() {
		once.Do(func() {
			abortConn(client)
			abortConn(server)
			p.untrack(client)
			p.untrack(server)
		})
	}

	copyDir := func(dst, src net.Conn, dir string) {
		defer p.wg.Done()
		var fault *plan
		if pl != nil && pl.dir == dir {
			fault = pl
		}
		forwarded := int64(0)
		buf := make([]byte, 16<<10)
		for {
			n, rerr := src.Read(buf)
			if n > 0 {
				chunk := buf[:n]
				if fault != nil && forwarded+int64(n) >= fault.after {
					// The fault offset falls inside this chunk.
					cut := fault.after - forwarded
					switch fault.kind {
					case KindReset:
						p.record(Event{Conn: idx, Kind: KindReset, Dir: dir, After: fault.after})
						abortBoth()
						return
					case KindTruncate:
						dst.Write(chunk[:cut])
						p.record(Event{Conn: idx, Kind: KindTruncate, Dir: dir, After: fault.after})
						closeBoth()
						return
					case KindDelay:
						p.record(Event{Conn: idx, Kind: KindDelay, Dir: dir, After: fault.after})
						time.Sleep(p.cfg.Delay)
						fault = nil // one spike, then clean forwarding
					case KindBlackhole:
						p.record(Event{Conn: idx, Kind: KindBlackhole, Dir: dir, After: fault.after})
						if cut > 0 {
							dst.Write(chunk[:cut])
						}
						// Silently discard from here on: keep reading so
						// the sender never blocks, deliver nothing. The
						// stalled peer's deadline ends the exchange;
						// Proxy.Close severs whatever remains.
						for {
							if _, err := src.Read(buf); err != nil {
								closeBoth()
								return
							}
						}
					}
				}
				if _, werr := dst.Write(chunk); werr != nil {
					closeBoth()
					return
				}
				forwarded += int64(n)
			}
			if rerr != nil {
				if rerr == io.EOF {
					// Half-close: propagate the FIN so the peer sees a
					// clean EOF, keep the other direction alive.
					if tc, ok := dst.(*net.TCPConn); ok {
						tc.CloseWrite()
						return
					}
				}
				closeBoth()
				return
			}
		}
	}

	p.wg.Add(2)
	go copyDir(server, client, "c2s")
	go copyDir(client, server, "s2c")
}

// abortConn closes c abruptly — SO_LINGER 0 turns the close into an RST on
// TCP, which is what a crashed peer looks like.
func abortConn(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}
