// Package qtree implements the query tree: the declarative intermediate
// representation on which all transformations operate. As the paper notes
// (§2), query trees differ from algebraic operator trees in that they retain
// all the declarativeness of SQL; a query tree is converted into an operator
// tree only when it undergoes physical optimization.
//
// The package provides the tree types, semantic analysis (binding an AST
// against a catalog), deep copying with from-item remapping (§3.1's
// "capability for deep copying query blocks and their constituents"), and
// canonical SQL rendering used both for display and as the key for cost
// annotation reuse (§3.4.2).
package qtree

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/datum"
)

// FromID uniquely identifies a from item within a Query. Column references
// name (FromID, output ordinal) pairs, so references are stable under
// transformations that reorder or splice from lists.
type FromID int32

// Expr is a scalar or predicate expression in the query tree.
type Expr interface {
	// Clone deep-copies the expression, remapping from-item IDs through r.
	// IDs absent from r (references to items outside the copied subtree,
	// i.e. correlation) are preserved.
	Clone(r *Remap) Expr
	// String renders the expression in SQL-ish syntax using raw from IDs;
	// use Block rendering for resolvable SQL.
	String() string
}

// Remap translates old from-item IDs to new ones during deep copy and
// carries the destination query so that cloned subquery blocks allocate
// their identities from it.
type Remap struct {
	IDs map[FromID]FromID
	dst *Query
}

func (r *Remap) lookup(id FromID) FromID {
	if n, ok := r.IDs[id]; ok {
		return n
	}
	return id
}

// Lookup translates an old from-item ID to its clone's ID; IDs outside the
// copied subtree map to themselves.
func (r *Remap) Lookup(id FromID) FromID { return r.lookup(id) }

// NewRemap returns an identity remap targeting query q: cloning with it
// preserves all from-item references while still allocating block
// identities (for subquery blocks) from q.
func NewRemap(q *Query) *Remap { return &Remap{IDs: map[FromID]FromID{}, dst: q} }

// Const is a literal value.
type Const struct{ Val datum.Datum }

// Col references output column Ord of from item From. For a base table,
// Ord is the catalog column ordinal (or the rowid ordinal); for a view,
// Ord indexes the view's select list.
type Col struct {
	From FromID
	Ord  int
	Name string // column name for display
}

// Param is a typed bind-parameter placeholder: the query tree keeps the
// slot, and the executor supplies the value at plan open (late binding), so
// one optimized plan can serve many bind sets. Ord indexes the owning
// query's parameter list (first-appearance order, named parameters
// deduplicated); Name is the user-visible name (":dept") or a generated
// one ("?1") for positional placeholders.
type Param struct {
	Ord  int
	Name string
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpConcat
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	// OpNullSafeEq is equality where NULL matches NULL; produced by the
	// set-operator-into-join transformation (§2.2.7), whose semantics make
	// nulls match.
	OpNullSafeEq
)

var binOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpConcat: "||",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpNullSafeEq: "<=>",
}

func (o BinOp) String() string { return binOpNames[o] }

// IsComparison reports whether the operator is a comparison.
func (o BinOp) IsComparison() bool { return o >= OpEq && o <= OpGe || o == OpNullSafeEq }

// Commute returns the comparison with sides swapped (a < b ⇒ b > a).
func (o BinOp) Commute() BinOp {
	switch o {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return o
}

// Negate returns the complementary comparison (a < b ⇒ a >= b).
func (o BinOp) Negate() BinOp {
	switch o {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	return o
}

// Bin is a binary operation.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Not is logical negation.
type Not struct{ E Expr }

// IsNull is "E IS [NOT] NULL".
type IsNull struct {
	E   Expr
	Neg bool
}

// Like is "E [NOT] LIKE pattern" with % and _ wildcards.
type Like struct {
	E, Pattern Expr
	Neg        bool
}

// InList is "E [NOT] IN (v1, v2, ...)".
type InList struct {
	E    Expr
	Vals []Expr
	Neg  bool
}

// Func is a scalar function call.
type Func struct {
	Def  *catalog.FuncDef
	Args []Expr
}

// LNNVL wraps a condition with Oracle's LNNVL semantics: TRUE when the
// condition evaluates to FALSE or UNKNOWN. Produced by disjunction-into-
// UNION-ALL expansion (§2.2.8) to keep branches disjoint.
type LNNVL struct{ E Expr }

// IsTrue forces strict two-valued truth: TRUE if E is TRUE, otherwise
// FALSE. In plain filter contexts it is equivalent to E (filters only
// accept TRUE), but inside a null-aware antijoin condition it marks the
// subquery's own predicates — which are strict under SQL semantics — as
// distinct from the null-aware connecting condition.
type IsTrue struct{ E Expr }

// AggOp enumerates aggregate functions.
type AggOp uint8

// Aggregate functions.
const (
	AggCount AggOp = iota // COUNT(expr) or COUNT(*)
	AggSum
	AggAvg
	AggMin
	AggMax
)

var aggNames = [...]string{
	AggCount: "COUNT", AggSum: "SUM", AggAvg: "AVG", AggMin: "MIN", AggMax: "MAX",
}

func (o AggOp) String() string { return aggNames[o] }

// Agg is an aggregate function reference; it may appear in the select list,
// HAVING, and ORDER BY of a grouped block.
type Agg struct {
	Op       AggOp
	Arg      Expr // nil for COUNT(*)
	Star     bool
	Distinct bool
}

// WinOp enumerates window functions: the aggregate functions applied over
// a window, plus ROW_NUMBER.
type WinOp uint8

// Window functions.
const (
	WinCount WinOp = iota
	WinSum
	WinAvg
	WinMin
	WinMax
	WinRowNumber
)

var winOpNames = [...]string{
	WinCount: "COUNT", WinSum: "SUM", WinAvg: "AVG",
	WinMin: "MIN", WinMax: "MAX", WinRowNumber: "ROW_NUMBER",
}

func (o WinOp) String() string { return winOpNames[o] }

// WinFunc is a window (analytic) function reference, allowed in the select
// list of a block: OP(arg) OVER (PARTITION BY ... ORDER BY ...). Running
// marks the RANGE UNBOUNDED PRECEDING .. CURRENT ROW frame (the paper's Q7
// running average); without it the aggregate spans the whole partition.
type WinFunc struct {
	Op          WinOp
	Arg         Expr // nil for COUNT(*) and ROW_NUMBER
	Star        bool
	PartitionBy []Expr
	OrderBy     []OrderItem
	Running     bool
}

// SubqKind classifies subquery predicates.
type SubqKind uint8

// Subquery predicate kinds.
const (
	SubqExists SubqKind = iota
	SubqNotExists
	SubqIn     // also = ANY
	SubqNotIn  // also <> ALL
	SubqAnyCmp // <op> ANY for non-equality op
	SubqAllCmp // <op> ALL for non-inequality op
	SubqScalar // scalar subquery used as a value
)

var subqNames = [...]string{
	SubqExists: "EXISTS", SubqNotExists: "NOT EXISTS", SubqIn: "IN",
	SubqNotIn: "NOT IN", SubqAnyCmp: "ANY", SubqAllCmp: "ALL", SubqScalar: "SCALAR",
}

func (k SubqKind) String() string { return subqNames[k] }

// Subq is a subquery predicate or scalar subquery. For IN/NOT IN/ANY/ALL,
// Left holds the outer-side expressions compared against the subquery's
// select list; Op is the comparison for ANY/ALL (OpEq for IN).
type Subq struct {
	Kind  SubqKind
	Op    BinOp
	Left  []Expr
	Block *Block
}

// CaseWhen is one arm of a Case.
type CaseWhen struct {
	Cond, Result Expr
}

// Case is a searched CASE expression.
type Case struct {
	Whens []CaseWhen
	Else  Expr // may be nil (NULL)
}

func (e *Const) Clone(r *Remap) Expr { return &Const{Val: e.Val} }
func (e *Param) Clone(r *Remap) Expr { return &Param{Ord: e.Ord, Name: e.Name} }
func (e *Col) Clone(r *Remap) Expr {
	return &Col{From: r.lookup(e.From), Ord: e.Ord, Name: e.Name}
}
func (e *Bin) Clone(r *Remap) Expr { return &Bin{Op: e.Op, L: e.L.Clone(r), R: e.R.Clone(r)} }
func (e *Not) Clone(r *Remap) Expr { return &Not{E: e.E.Clone(r)} }
func (e *IsNull) Clone(r *Remap) Expr {
	return &IsNull{E: e.E.Clone(r), Neg: e.Neg}
}
func (e *Like) Clone(r *Remap) Expr {
	return &Like{E: e.E.Clone(r), Pattern: e.Pattern.Clone(r), Neg: e.Neg}
}
func (e *InList) Clone(r *Remap) Expr {
	return &InList{E: e.E.Clone(r), Vals: cloneExprs(e.Vals, r), Neg: e.Neg}
}
func (e *Func) Clone(r *Remap) Expr   { return &Func{Def: e.Def, Args: cloneExprs(e.Args, r)} }
func (e *LNNVL) Clone(r *Remap) Expr  { return &LNNVL{E: e.E.Clone(r)} }
func (e *IsTrue) Clone(r *Remap) Expr { return &IsTrue{E: e.E.Clone(r)} }
func (e *Agg) Clone(r *Remap) Expr {
	c := &Agg{Op: e.Op, Star: e.Star, Distinct: e.Distinct}
	if e.Arg != nil {
		c.Arg = e.Arg.Clone(r)
	}
	return c
}
func (e *WinFunc) Clone(r *Remap) Expr {
	c := &WinFunc{Op: e.Op, Star: e.Star, Running: e.Running}
	if e.Arg != nil {
		c.Arg = e.Arg.Clone(r)
	}
	c.PartitionBy = cloneExprs(e.PartitionBy, r)
	for _, o := range e.OrderBy {
		c.OrderBy = append(c.OrderBy, OrderItem{Expr: o.Expr.Clone(r), Desc: o.Desc})
	}
	return c
}
func (e *Subq) Clone(r *Remap) Expr {
	return &Subq{Kind: e.Kind, Op: e.Op, Left: cloneExprs(e.Left, r), Block: e.Block.cloneStructure(r)}
}
func (e *Case) Clone(r *Remap) Expr {
	c := &Case{}
	for _, w := range e.Whens {
		c.Whens = append(c.Whens, CaseWhen{Cond: w.Cond.Clone(r), Result: w.Result.Clone(r)})
	}
	if e.Else != nil {
		c.Else = e.Else.Clone(r)
	}
	return c
}

func cloneExprs(es []Expr, r *Remap) []Expr {
	if es == nil {
		return nil
	}
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = e.Clone(r)
	}
	return out
}

func (e *Const) String() string { return e.Val.String() }
func (e *Param) String() string { return ":" + e.Name }
func (e *Col) String() string {
	return fmt.Sprintf("q%d.%s", e.From, e.Name)
}
func (e *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}
func (e *Not) String() string { return fmt.Sprintf("NOT (%s)", e.E) }
func (e *IsNull) String() string {
	if e.Neg {
		return fmt.Sprintf("%s IS NOT NULL", e.E)
	}
	return fmt.Sprintf("%s IS NULL", e.E)
}
func (e *Like) String() string {
	neg := ""
	if e.Neg {
		neg = " NOT"
	}
	return fmt.Sprintf("%s%s LIKE %s", e.E, neg, e.Pattern)
}
func (e *InList) String() string {
	neg := ""
	if e.Neg {
		neg = " NOT"
	}
	s := fmt.Sprintf("%s%s IN (", e.E, neg)
	for i, v := range e.Vals {
		if i > 0 {
			s += ", "
		}
		s += v.String()
	}
	return s + ")"
}
func (e *Func) String() string {
	s := e.Def.Name + "("
	for i, a := range e.Args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}
func (e *LNNVL) String() string  { return fmt.Sprintf("LNNVL(%s)", e.E) }
func (e *IsTrue) String() string { return fmt.Sprintf("(%s) IS TRUE", e.E) }
func (e *Agg) String() string {
	if e.Star {
		return "COUNT(*)"
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", e.Op, d, e.Arg)
}
func (e *WinFunc) String() string {
	arg := "*"
	if e.Arg != nil {
		arg = e.Arg.String()
	}
	if e.Op == WinRowNumber {
		arg = ""
	}
	s := fmt.Sprintf("%s(%s) OVER (", e.Op, arg)
	for i, p := range e.PartitionBy {
		if i == 0 {
			s += "PARTITION BY "
		} else {
			s += ", "
		}
		s += p.String()
	}
	for i, o := range e.OrderBy {
		if i == 0 {
			if len(e.PartitionBy) > 0 {
				s += " "
			}
			s += "ORDER BY "
		} else {
			s += ", "
		}
		s += o.Expr.String()
		if o.Desc {
			s += " DESC"
		}
	}
	return s + ")"
}
func (e *Subq) String() string {
	switch e.Kind {
	case SubqExists, SubqNotExists:
		return fmt.Sprintf("%s (subquery b%d)", e.Kind, e.Block.ID)
	case SubqScalar:
		return fmt.Sprintf("(subquery b%d)", e.Block.ID)
	default:
		return fmt.Sprintf("%v %s (subquery b%d)", e.Left, e.Kind, e.Block.ID)
	}
}
func (e *Case) String() string {
	s := "CASE"
	for _, w := range e.Whens {
		s += fmt.Sprintf(" WHEN %s THEN %s", w.Cond, w.Result)
	}
	if e.Else != nil {
		s += fmt.Sprintf(" ELSE %s", e.Else)
	}
	return s + " END"
}
