package qtree

import (
	"fmt"

	"repro/internal/catalog"
)

// JoinKind describes how a from item joins into its block. Inner joins are
// expressed as WHERE conjuncts; non-inner kinds carry their own condition
// and impose a partial order on the join (the item must follow every item
// its condition references), exactly as the paper describes for semijoin,
// antijoin and outer join (§2.1.1).
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinSemi
	JoinAnti
	// JoinNullAwareAnti is the null-aware antijoin used to unnest NOT IN /
	// ALL subqueries whose connecting columns may be null (§2.1.1 mentions
	// this variant as upcoming in "the next release of Oracle"; we
	// implement it).
	JoinNullAwareAnti
	JoinLeftOuter
	JoinFullOuter
)

var joinKindNames = [...]string{
	JoinInner: "INNER", JoinSemi: "SEMI", JoinAnti: "ANTI",
	JoinNullAwareAnti: "NULL-AWARE ANTI", JoinLeftOuter: "LEFT OUTER",
	JoinFullOuter: "FULL OUTER",
}

func (k JoinKind) String() string { return joinKindNames[k] }

// FromItem is one entry in a block's from list: a base table or an inline
// view, with its join kind and (for non-inner joins) join condition.
type FromItem struct {
	ID    FromID
	Alias string
	Table *catalog.Table // base table, or nil
	View  *Block         // inline view, or nil
	Kind  JoinKind
	Cond  []Expr // join condition conjuncts for non-inner kinds
	// Lateral marks a view whose body contains correlated references to
	// sibling from items — the result of join predicate pushdown (§2.2.3).
	// A lateral view must be joined (by nested loops) after the items it
	// references.
	Lateral bool
}

// IsTable reports whether the item is a base table.
func (f *FromItem) IsTable() bool { return f.Table != nil }

// NumCols returns the number of output columns of the item (including the
// implicit rowid column for base tables).
func (f *FromItem) NumCols() int {
	if f.Table != nil {
		return f.Table.NumCols() + 1 // + rowid
	}
	return len(f.View.OutCols())
}

// ColName returns the display name of output column ord.
func (f *FromItem) ColName(ord int) string {
	if f.Table != nil {
		if ord == f.Table.RowidOrdinal() {
			return "ROWID"
		}
		if ord >= 0 && ord < len(f.Table.Cols) {
			return f.Table.Cols[ord].Name
		}
		return fmt.Sprintf("C%d", ord)
	}
	cols := f.View.OutCols()
	if ord >= 0 && ord < len(cols) {
		return cols[ord]
	}
	return fmt.Sprintf("C%d", ord)
}

// SelectItem is one output column of a block.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SetOpKind enumerates set operations between blocks.
type SetOpKind uint8

// Set operation kinds.
const (
	SetUnion SetOpKind = iota
	SetUnionAll
	SetIntersect
	SetMinus
)

var setOpNames = [...]string{
	SetUnion: "UNION", SetUnionAll: "UNION ALL",
	SetIntersect: "INTERSECT", SetMinus: "MINUS",
}

func (k SetOpKind) String() string { return setOpNames[k] }

// SetOp makes a block a set operation over child blocks instead of a
// SELECT. All children have the same output arity.
type SetOp struct {
	Kind     SetOpKind
	Children []*Block
}

// Block is one query block: either a SELECT (Set == nil) or a set operation
// (Set != nil, in which case the SELECT fields other than OrderBy/Limit are
// unused).
type Block struct {
	ID           int
	Distinct     bool
	Select       []SelectItem
	From         []*FromItem
	Where        []Expr // conjuncts
	GroupBy      []Expr
	GroupingSets [][]int // indexes into GroupBy; nil means a single full set
	Having       []Expr  // conjuncts
	OrderBy      []OrderItem
	// Limit is the maximum number of rows to return (from a "rownum < k"
	// or "rownum <= k" predicate); 0 means unlimited.
	Limit int64
	Set   *SetOp

	query *Query // owning query, for ID allocation during transformation
}

// Query owns a tree of blocks and allocates query-unique IDs.
type Query struct {
	Root    *Block
	Catalog *catalog.Catalog
	// Params lists the query's bind-parameter names in ordinal order (the
	// Ord field of qtree.Param indexes this slice). Named parameters appear
	// once regardless of how many times they occur in the text.
	Params   []string
	nextFrom FromID
	nextBlk  int
	// cow, when non-nil, marks this query as a copy-on-write clone sharing
	// blocks with a base query (see cow.go).
	cow *cowState
}

// NewQuery creates an empty query against a catalog.
func NewQuery(cat *catalog.Catalog) *Query {
	return &Query{Catalog: cat, nextFrom: 1, nextBlk: 1}
}

// NewBlock allocates a block owned by this query.
func (q *Query) NewBlock() *Block {
	b := &Block{ID: q.nextBlk, query: q}
	q.nextBlk++
	return b
}

// NewFromID allocates a fresh from-item ID.
func (q *Query) NewFromID() FromID {
	id := q.nextFrom
	q.nextFrom++
	return id
}

// Query returns the owning query of the block.
func (b *Block) Query() *Query { return b.query }

// IsSetOp reports whether the block is a set operation.
func (b *Block) IsSetOp() bool { return b.Set != nil }

// HasGroupBy reports whether the block aggregates (explicit GROUP BY or
// aggregate functions with an implicit all-rows group).
func (b *Block) HasGroupBy() bool {
	if len(b.GroupBy) > 0 {
		return true
	}
	for _, it := range b.Select {
		if ContainsAgg(it.Expr) {
			return true
		}
	}
	for _, h := range b.Having {
		if ContainsAgg(h) {
			return true
		}
	}
	return false
}

// OutCols returns the output column names of the block.
func (b *Block) OutCols() []string {
	if b.Set != nil {
		return b.Set.Children[0].OutCols()
	}
	out := make([]string, len(b.Select))
	for i, it := range b.Select {
		if it.Alias != "" {
			out[i] = it.Alias
		} else if c, ok := it.Expr.(*Col); ok {
			out[i] = c.Name
		} else {
			out[i] = fmt.Sprintf("COL%d", i+1)
		}
	}
	return out
}

// FindFrom returns the from item with the given ID in this block (not
// descending into views), or nil.
func (b *Block) FindFrom(id FromID) *FromItem {
	for _, f := range b.From {
		if f.ID == id {
			return f
		}
	}
	return nil
}

// Clone deep-copies the whole query, re-allocating every from-item and
// block identity. The returned remap translates old from IDs to new ones so
// callers can carry references (e.g. transformation directives, §3.1)
// across the copy.
func (q *Query) Clone() (*Query, *Remap) {
	fullCloneCount.Add(1)
	nq := &Query{Catalog: q.Catalog, Params: append([]string(nil), q.Params...), nextFrom: 1, nextBlk: 1}
	r := &Remap{IDs: map[FromID]FromID{}, dst: nq}
	registerFromIDs(q.Root, r)
	nq.Root = q.Root.cloneStructure(r)
	return nq, r
}

// CloneBlockInto deep-copies block b, allocating fresh IDs in query q.
// References to from items defined outside b (correlation) are preserved.
// This supports transformations that replicate a block within the same
// query, such as disjunction-into-UNION-ALL and join factorization.
func CloneBlockInto(b *Block, q *Query) *Block {
	r := &Remap{IDs: map[FromID]FromID{}, dst: q}
	registerFromIDs(b, r)
	return b.cloneStructure(r)
}

// RegisterBlockIDs pre-registers fresh IDs in r for every from item of the
// block subtree. Callers cloning an expression that embeds subquery blocks
// must register those blocks first so the clones get distinct identities.
func RegisterBlockIDs(b *Block, r *Remap) { registerFromIDs(b, r) }

// registerFromIDs pre-registers fresh IDs for every from item in the block
// subtree (including views and subquery blocks) so that references remap
// consistently regardless of clone order.
func registerFromIDs(b *Block, r *Remap) {
	if b.Set != nil {
		for _, c := range b.Set.Children {
			registerFromIDs(c, r)
		}
	}
	for _, f := range b.From {
		r.IDs[f.ID] = r.dst.NewFromID()
		if f.View != nil {
			registerFromIDs(f.View, r)
		}
	}
	walkBlockExprs(b, func(e Expr) {
		if s, ok := e.(*Subq); ok {
			registerFromIDs(s.Block, r)
		}
	})
}

func (b *Block) cloneStructure(r *Remap) *Block {
	nb := r.dst.NewBlock()
	nb.Distinct = b.Distinct
	nb.Limit = b.Limit
	if b.Set != nil {
		nb.Set = &SetOp{Kind: b.Set.Kind}
		for _, c := range b.Set.Children {
			nb.Set.Children = append(nb.Set.Children, c.cloneStructure(r))
		}
	}
	for _, f := range b.From {
		nf := &FromItem{
			ID: r.lookup(f.ID), Alias: f.Alias, Table: f.Table,
			Kind: f.Kind, Lateral: f.Lateral,
		}
		if f.View != nil {
			nf.View = f.View.cloneStructure(r)
		}
		nf.Cond = cloneExprs(f.Cond, r)
		nb.From = append(nb.From, nf)
	}
	for _, it := range b.Select {
		nb.Select = append(nb.Select, SelectItem{Expr: it.Expr.Clone(r), Alias: it.Alias})
	}
	nb.Where = cloneExprs(b.Where, r)
	nb.GroupBy = cloneExprs(b.GroupBy, r)
	if b.GroupingSets != nil {
		nb.GroupingSets = make([][]int, len(b.GroupingSets))
		for i, s := range b.GroupingSets {
			nb.GroupingSets[i] = append([]int(nil), s...)
		}
	}
	nb.Having = cloneExprs(b.Having, r)
	for _, o := range b.OrderBy {
		nb.OrderBy = append(nb.OrderBy, OrderItem{Expr: o.Expr.Clone(r), Desc: o.Desc})
	}
	return nb
}

// walkBlockExprs applies f to every expression in the block (not descending
// into views or subquery blocks — f receives the Subq node itself).
func walkBlockExprs(b *Block, f func(Expr)) {
	visit := func(e Expr) {
		if e != nil {
			WalkExpr(e, func(x Expr) bool {
				f(x)
				_, isSubq := x.(*Subq)
				return !isSubq // don't descend into subquery blocks
			})
		}
	}
	for _, it := range b.Select {
		visit(it.Expr)
	}
	for _, fi := range b.From {
		for _, c := range fi.Cond {
			visit(c)
		}
	}
	for _, e := range b.Where {
		visit(e)
	}
	for _, e := range b.GroupBy {
		visit(e)
	}
	for _, e := range b.Having {
		visit(e)
	}
	for _, o := range b.OrderBy {
		visit(o.Expr)
	}
}

// VisitExprs applies f to every expression in the block, without descending
// into view blocks or subquery blocks.
func (b *Block) VisitExprs(f func(Expr)) { walkBlockExprs(b, f) }

// WalkExpr walks e in pre-order. f returns whether to descend into the
// node's children. Subquery blocks are not entered (the *Subq node is
// visited; its Left expressions are walked when f returns true).
func WalkExpr(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch v := e.(type) {
	case *Bin:
		WalkExpr(v.L, f)
		WalkExpr(v.R, f)
	case *Not:
		WalkExpr(v.E, f)
	case *IsNull:
		WalkExpr(v.E, f)
	case *Like:
		WalkExpr(v.E, f)
		WalkExpr(v.Pattern, f)
	case *InList:
		WalkExpr(v.E, f)
		for _, x := range v.Vals {
			WalkExpr(x, f)
		}
	case *Func:
		for _, x := range v.Args {
			WalkExpr(x, f)
		}
	case *LNNVL:
		WalkExpr(v.E, f)
	case *IsTrue:
		WalkExpr(v.E, f)
	case *Agg:
		if v.Arg != nil {
			WalkExpr(v.Arg, f)
		}
	case *WinFunc:
		if v.Arg != nil {
			WalkExpr(v.Arg, f)
		}
		for _, x := range v.PartitionBy {
			WalkExpr(x, f)
		}
		for _, o := range v.OrderBy {
			WalkExpr(o.Expr, f)
		}
	case *Subq:
		for _, x := range v.Left {
			WalkExpr(x, f)
		}
	case *Case:
		for _, w := range v.Whens {
			WalkExpr(w.Cond, f)
			WalkExpr(w.Result, f)
		}
		if v.Else != nil {
			WalkExpr(v.Else, f)
		}
	}
}

// ContainsAgg reports whether e contains an aggregate function reference
// (not inside a nested subquery).
func ContainsAgg(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		switch x.(type) {
		case *Agg:
			found = true
			return false
		case *Subq:
			return false
		}
		return !found
	})
	return found
}

// ColsUsed collects the distinct from IDs referenced by e, including those
// referenced inside subquery blocks (correlation), into set.
func ColsUsed(e Expr, set map[FromID]bool) {
	WalkExpr(e, func(x Expr) bool {
		switch v := x.(type) {
		case *Col:
			set[v.From] = true
		case *Subq:
			collectBlockRefs(v.Block, set)
		}
		return true
	})
}

// collectBlockRefs adds every from ID referenced anywhere in b's subtree.
func collectBlockRefs(b *Block, set map[FromID]bool) {
	walkBlockExprs(b, func(e Expr) {
		switch v := e.(type) {
		case *Col:
			set[v.From] = true
		case *Subq:
			collectBlockRefs(v.Block, set)
		}
	})
	for _, f := range b.From {
		if f.View != nil {
			collectBlockRefs(f.View, set)
		}
	}
	if b.Set != nil {
		for _, c := range b.Set.Children {
			collectBlockRefs(c, set)
		}
	}
}

// LocalFromIDs returns the set of from IDs defined directly in b.
func (b *Block) LocalFromIDs() map[FromID]bool {
	out := map[FromID]bool{}
	for _, f := range b.From {
		out[f.ID] = true
	}
	return out
}

// OuterRefs returns the from IDs referenced by block b (anywhere in its
// subtree) that are not defined in b or any nested block of b — i.e. b's
// correlated references.
func (b *Block) OuterRefs() map[FromID]bool {
	refs := map[FromID]bool{}
	collectBlockRefs(b, refs)
	removeDefined(b, refs)
	return refs
}

func removeDefined(b *Block, refs map[FromID]bool) {
	for _, f := range b.From {
		delete(refs, f.ID)
		if f.View != nil {
			removeDefined(f.View, refs)
		}
	}
	if b.Set != nil {
		for _, c := range b.Set.Children {
			removeDefined(c, refs)
		}
	}
	walkBlockExprs(b, func(e Expr) {
		if s, ok := e.(*Subq); ok {
			removeDefined(s.Block, refs)
		}
	})
}

// IsCorrelated reports whether block b references from items defined
// outside its own subtree.
func (b *Block) IsCorrelated() bool { return len(b.OuterRefs()) > 0 }

// AdoptFrom replaces q's tree with src's, transferring ownership of every
// block (ID allocation runs through the owning query) to q. src is typically
// a backup deep copy taken before a speculative mutation of q: restoring it
// on failure makes transformation application all-or-nothing, which the
// panic-isolation layer of package cbqt relies on. src must not be used
// afterwards.
func (q *Query) AdoptFrom(src *Query) {
	q.Root = src.Root
	q.Params = src.Params
	q.nextFrom = src.nextFrom
	q.nextBlk = src.nextBlk
	q.reown(q.Root)
}

// reown points every block of the subtree back at q.
func (q *Query) reown(b *Block) {
	if b == nil {
		return
	}
	b.query = q
	if b.Set != nil {
		for _, c := range b.Set.Children {
			q.reown(c)
		}
	}
	for _, f := range b.From {
		if f.View != nil {
			q.reown(f.View)
		}
	}
	walkBlockExprs(b, func(e Expr) {
		if s, ok := e.(*Subq); ok {
			q.reown(s.Block)
		}
	})
}

// ApproxBytes is a rough estimate of the memory held by the query tree —
// the unit of the cbqt memory budget, which charges one tree copy per
// transformation state evaluated (§3.4.3's explicit memory management).
func (q *Query) ApproxBytes() int64 {
	var total int64
	var walk func(b *Block)
	walk = func(b *Block) {
		if b == nil {
			return
		}
		total += 256 // block header, slices
		if b.Set != nil {
			for _, c := range b.Set.Children {
				walk(c)
			}
		}
		for _, f := range b.From {
			total += 128 + int64(len(f.Alias))
			if f.View != nil {
				walk(f.View)
			}
		}
		walkBlockExprs(b, func(e Expr) {
			total += 48 // expr node
			if s, ok := e.(*Subq); ok {
				walk(s.Block)
			}
		})
	}
	walk(q.Root)
	return total
}
