package qtree

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datum"
)

// genExpr builds a random expression tree of bounded depth over columns of
// two pretend relations (IDs 1 and 2).
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return &Const{Val: datum.NewInt(int64(rng.Intn(100)))}
		case 1:
			return &Const{Val: datum.NewString(string(rune('a' + rng.Intn(26))))}
		default:
			return &Col{From: FromID(rng.Intn(2) + 1), Ord: rng.Intn(4), Name: "C"}
		}
	}
	switch rng.Intn(8) {
	case 0:
		ops := []BinOp{OpAdd, OpSub, OpMul, OpEq, OpLt, OpGe, OpAnd, OpOr, OpNullSafeEq}
		return &Bin{Op: ops[rng.Intn(len(ops))], L: genExpr(rng, depth-1), R: genExpr(rng, depth-1)}
	case 1:
		return &Not{E: genExpr(rng, depth-1)}
	case 2:
		return &IsNull{E: genExpr(rng, depth-1), Neg: rng.Intn(2) == 0}
	case 3:
		n := rng.Intn(3) + 1
		in := &InList{E: genExpr(rng, depth-1), Neg: rng.Intn(2) == 0}
		for i := 0; i < n; i++ {
			in.Vals = append(in.Vals, genExpr(rng, depth-1))
		}
		return in
	case 4:
		return &LNNVL{E: genExpr(rng, depth-1)}
	case 5:
		return &IsTrue{E: genExpr(rng, depth-1)}
	case 6:
		c := &Case{Else: genExpr(rng, depth-1)}
		for i := 0; i <= rng.Intn(2); i++ {
			c.Whens = append(c.Whens, CaseWhen{Cond: genExpr(rng, depth-1), Result: genExpr(rng, depth-1)})
		}
		return c
	default:
		return &Like{E: genExpr(rng, depth-1), Pattern: &Const{Val: datum.NewString("%x%")}, Neg: rng.Intn(2) == 0}
	}
}

func TestQuickCloneRendersIdentically(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 4)
		q := NewQuery(nil)
		clone := e.Clone(NewRemap(q))
		return e.String() == clone.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickIdentityRewritePreservesStructure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 4)
		r := RewriteExpr(e, func(Expr) Expr { return nil })
		return e.String() == r.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickCloneIsDeepForExprs(t *testing.T) {
	// Rewriting the clone never changes the original's rendering.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 4)
		before := e.String()
		q := NewQuery(nil)
		clone := e.Clone(NewRemap(q))
		_ = RewriteExpr(clone, func(x Expr) Expr {
			if _, ok := x.(*Col); ok {
				return &Const{Val: datum.Null}
			}
			return nil
		})
		return e.String() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickRemapTranslatesAllRefs(t *testing.T) {
	// After cloning with a remap covering IDs 1 and 2, no reference to the
	// old IDs survives.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 4)
		q := NewQuery(nil)
		r := NewRemap(q)
		r.IDs[1] = 101
		r.IDs[2] = 102
		clone := e.Clone(r)
		ok := true
		WalkExpr(clone, func(x Expr) bool {
			if c, isCol := x.(*Col); isCol && (c.From == 1 || c.From == 2) {
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickSplitAndRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%5) + 1
		rng := rand.New(rand.NewSource(seed))
		var conjuncts []Expr
		for i := 0; i < n; i++ {
			// Comparisons only: no top-level ANDs inside the conjuncts.
			conjuncts = append(conjuncts, &Bin{
				Op: OpEq,
				L:  genLeaf(rng),
				R:  genLeaf(rng),
			})
		}
		split := SplitAnd(AndAll(conjuncts))
		if len(split) != n {
			return false
		}
		for i := range split {
			if split[i].String() != conjuncts[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func genLeaf(rng *rand.Rand) Expr {
	if rng.Intn(2) == 0 {
		return &Const{Val: datum.NewInt(int64(rng.Intn(50)))}
	}
	return &Col{From: FromID(rng.Intn(2) + 1), Ord: rng.Intn(4), Name: "C"}
}

// genQuery builds a random two-view query by hand (no catalog): the root
// block reads two inline views whose FromIDs are exactly the 1 and 2 that
// genExpr's columns reference, so every generated tree renders
// deterministically.
func genQuery(rng *rand.Rand) *Query {
	q := NewQuery(nil)
	q.Root = q.NewBlock()
	for i := 0; i < 2; i++ {
		v := q.NewBlock()
		for c := 0; c < 4; c++ {
			v.Select = append(v.Select, SelectItem{Expr: genLeaf(rng), Alias: fmt.Sprintf("C%d", c)})
		}
		q.Root.From = append(q.Root.From, &FromItem{ID: q.NewFromID(), Alias: fmt.Sprintf("v%d", i), View: v})
	}
	for i := 0; i <= rng.Intn(3); i++ {
		q.Root.Where = append(q.Root.Where, genExpr(rng, 2))
	}
	for c := 0; c < 2; c++ {
		q.Root.Select = append(q.Root.Select, SelectItem{Expr: genLeaf(rng), Alias: fmt.Sprintf("S%d", c)})
	}
	return q
}

func TestQuickCloneCOWRendersIdentically(t *testing.T) {
	// A fresh COW clone shares every block yet renders byte-identically,
	// and mutating the clone through MutableDeep never changes the base.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := genQuery(rng)
		before := q.SQL()
		c := q.CloneCOW()
		if c.SQL() != before {
			return false
		}
		root := c.MutableDeep(c.Root)
		root.Where = nil
		root.Distinct = true
		for _, fi := range root.From {
			fi.View.Select = fi.View.Select[:1]
		}
		return q.SQL() == before && q.CloneCOW().SQL() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCOWMaterializeIsIDTransparent(t *testing.T) {
	// Materializing every shared block keeps the identical Remap-free ID
	// space: block IDs, from IDs and the allocation counters all match the
	// base, so COW and full-clone searches enumerate the same states.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := genQuery(rng)
		c := q.CloneCOW()
		c.MutableDeep(c.Root)
		if c.nextFrom != q.nextFrom || c.nextBlk != q.nextBlk {
			return false
		}
		if c.Root.ID != q.Root.ID || len(c.Root.From) != len(q.Root.From) {
			return false
		}
		for i, fi := range c.Root.From {
			base := q.Root.From[i]
			if fi.ID != base.ID || fi.View.ID != base.View.ID {
				return false
			}
			// Fully materialized: no block of the clone is the base's.
			if fi.View == base.View {
				return false
			}
		}
		return c.Root != q.Root && c.SQL() == q.SQL()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickColsUsedMatchesWalk(t *testing.T) {
	// ColsUsed agrees with a manual walk.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 4)
		got := map[FromID]bool{}
		ColsUsed(e, got)
		want := map[FromID]bool{}
		WalkExpr(e, func(x Expr) bool {
			if c, ok := x.(*Col); ok {
				want[c.From] = true
			}
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for id := range want {
			if !got[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
