package qtree_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/qtree"
	"repro/internal/testkit"
)

// cowSQLs spans the block shapes the transformation rules rewrite: plain
// selects, inline views, correlated subqueries, grouping and set operations.
var cowSQLs = []string{
	"SELECT e.NAME FROM EMP e",
	"SELECT e.NAME, e.SALARY FROM EMP e WHERE e.DEPT_ID = 1 AND e.SALARY > 10",
	"SELECT e.EMP_ID, v.N FROM EMP e, (SELECT d.NAME AS N, d.DEPT_ID AS ID FROM DEPT d WHERE d.LOC_ID = 3) v WHERE e.DEPT_ID = v.ID",
	"SELECT e.NAME FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.DEPT_ID = e.DEPT_ID AND d.LOC_ID = 7)",
	"SELECT e.NAME FROM EMP e WHERE NOT EXISTS (SELECT 1 FROM DEPT d WHERE d.DEPT_ID = e.DEPT_ID)",
	"SELECT e.NAME FROM EMP e WHERE e.DEPT_ID IN (SELECT d.DEPT_ID FROM DEPT d WHERE d.LOC_ID = 3)",
	"SELECT e.DEPT_ID, AVG(e.SALARY) AS A FROM EMP e GROUP BY e.DEPT_ID ORDER BY e.DEPT_ID",
	"SELECT e.NAME FROM EMP e UNION ALL SELECT d.NAME FROM DEPT d",
	"SELECT e.EMP_ID, w.M FROM EMP e, (SELECT v.N AS M FROM (SELECT d.NAME AS N FROM DEPT d) v) w",
}

func bindCOW(t *testing.T, sql string) *qtree.Query {
	t.Helper()
	db := testkit.TinyDB()
	q, err := qtree.BindSQL(sql, db.Catalog)
	if err != nil {
		t.Fatalf("bind %q: %v", sql, err)
	}
	return q
}

// mutateEveryBlock materializes every block of the COW clone and rewrites
// each one visibly (flipping Distinct and dropping WHERE/HAVING), the most
// invasive legal mutation a transformation could perform.
func mutateEveryBlock(q *qtree.Query) {
	root := q.MutableDeep(q.Root)
	var walk func(b *qtree.Block)
	walk = func(b *qtree.Block) {
		if b == nil {
			return
		}
		b.Distinct = !b.Distinct
		b.Where = nil
		b.Having = nil
		if b.Set != nil {
			for _, c := range b.Set.Children {
				walk(c)
			}
		}
		for _, f := range b.From {
			if f.View != nil {
				walk(f.View)
			}
		}
	}
	walk(root)
}

// TestCOWCloneIsolation is the core aliasing property: after a COW clone is
// mutated — through Mutable on one block or MutableDeep on the whole tree —
// the base renders byte-identical SQL, passes the semantic checker, and its
// tree snapshot verifies untouched. A sibling clone taken before the
// mutation is equally unaffected.
func TestCOWCloneIsolation(t *testing.T) {
	for i, sql := range cowSQLs {
		t.Run(fmt.Sprintf("q%d", i), func(t *testing.T) {
			q := bindCOW(t, sql)
			before := q.SQL()
			snap := check.Snapshot(q)

			c1 := q.CloneCOW()
			c2 := q.CloneCOW()
			c1Before := c1.SQL()
			if c1Before != before {
				t.Fatalf("fresh COW clone renders differently:\n got %s\nwant %s", c1Before, before)
			}

			mutateEveryBlock(c1)

			if got := q.SQL(); got != before {
				t.Errorf("base changed after clone mutation:\n got %s\nwant %s", got, before)
			}
			if got := c2.SQL(); got != before {
				t.Errorf("sibling clone changed after clone mutation:\n got %s\nwant %s", got, before)
			}
			if vs := snap.Verify(); len(vs) > 0 {
				t.Errorf("base snapshot violated: %v", vs)
			}
			for _, vq := range []*qtree.Query{q, c1, c2} {
				if vs := check.Aliasing(vq); len(vs) > 0 {
					t.Errorf("aliasing violations: %v", vs)
				}
			}
			if vs := check.Query(q); len(vs) > 0 {
				t.Errorf("base fails semantic check after clone mutation: %v", vs)
			}
		})
	}
}

// TestCOWSingleBlockMutation mutates exactly one block through Mutable and
// asserts the clone diverges while the base and the untouched sibling
// blocks stay shared.
func TestCOWSingleBlockMutation(t *testing.T) {
	// Two sibling views: mutating one must leave the other shared.
	q := bindCOW(t, "SELECT v.N, w.M FROM (SELECT d.NAME AS N FROM DEPT d) v, (SELECT e.NAME AS M FROM EMP e) w")
	before := q.SQL()

	c := q.CloneCOW()
	view := q.Root.From[0].View
	m := c.Mutable(view)
	m.Distinct = true

	if got := q.SQL(); got != before {
		t.Fatalf("base changed:\n got %s\nwant %s", got, before)
	}
	if got := c.SQL(); got == before {
		t.Fatal("clone did not diverge after Mutable mutation")
	}
	if vs := check.Aliasing(c); len(vs) > 0 {
		t.Fatalf("aliasing violations on mutated clone: %v", vs)
	}
	shared, owned := c.COWStats()
	if shared == 0 {
		t.Error("no blocks remain shared after a single-block mutation")
	}
	// Mutable copies the root→view path: the root and the view are owned.
	if owned != 2 {
		t.Errorf("owned blocks = %d, want 2 (root + view)", owned)
	}
}

// TestCOWMaterializeKeepsIDs asserts full materialization is ID-transparent:
// every block keeps its original ID, every from item its FromID, and the
// clone's ID counters match the base's — the property that makes COW and
// full-clone searches enumerate identical states.
func TestCOWMaterializeKeepsIDs(t *testing.T) {
	type ids struct {
		blocks []int
		froms  []qtree.FromID
	}
	collect := func(q *qtree.Query) ids {
		var out ids
		var walk func(b *qtree.Block)
		walk = func(b *qtree.Block) {
			if b == nil {
				return
			}
			out.blocks = append(out.blocks, b.ID)
			if b.Set != nil {
				for _, c := range b.Set.Children {
					walk(c)
				}
			}
			for _, f := range b.From {
				out.froms = append(out.froms, f.ID)
				if f.View != nil {
					walk(f.View)
				}
			}
		}
		walk(q.Root)
		return out
	}
	for i, sql := range cowSQLs {
		t.Run(fmt.Sprintf("q%d", i), func(t *testing.T) {
			q := bindCOW(t, sql)
			base := collect(q)
			baseFrom, baseBlk := q.IDCounters()

			c := q.CloneCOW()
			c.MutableDeep(c.Root)

			clone := collect(c)
			if fmt.Sprint(clone.blocks) != fmt.Sprint(base.blocks) {
				t.Errorf("block IDs changed: got %v want %v", clone.blocks, base.blocks)
			}
			if fmt.Sprint(clone.froms) != fmt.Sprint(base.froms) {
				t.Errorf("from IDs changed: got %v want %v", clone.froms, base.froms)
			}
			cf, cb := c.IDCounters()
			if cf != baseFrom || cb != baseBlk {
				t.Errorf("ID counters diverged: clone (%d,%d) base (%d,%d)", cf, cb, baseFrom, baseBlk)
			}
			if got := c.SQL(); got != q.SQL() {
				t.Errorf("materialized clone renders differently:\n got %s\nwant %s", got, q.SQL())
			}
		})
	}
}
