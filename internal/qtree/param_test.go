package qtree

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/storage"
)

// paramDB builds a tiny two-table database for parameter tests.
func paramDB(t *testing.T) *storage.DB {
	t.Helper()
	cat := catalog.New()
	db := storage.NewDB(cat)
	tt, err := db.CreateTable(&catalog.Table{
		Name: "T",
		Cols: []catalog.Column{
			{Name: "ID", Type: datum.KInt},
			{Name: "GRP", Type: datum.KInt},
			{Name: "VAL", Type: datum.KFloat},
		},
		PrimaryKey: []int{0},
		Indexes:    []*catalog.Index{{Name: "T_GRP", Cols: []int{1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tt.MustAppend(datum.NewInt(int64(i)), datum.NewInt(int64(i%4)), datum.NewFloat(float64(i)*1.5))
	}
	db.Finalize()
	return db
}

func TestBindParamDedupAndOrdinals(t *testing.T) {
	db := paramDB(t)
	q, err := BindSQL("SELECT t.ID FROM t WHERE t.GRP = :g AND t.VAL > :v AND t.ID <> :G", db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	// :g and :G are the same parameter; discovery order is g then v.
	if len(q.Params) != 2 || q.Params[0] != "G" || q.Params[1] != "V" {
		t.Fatalf("params = %v, want [G V]", q.Params)
	}
}

func TestBindPositionalParams(t *testing.T) {
	db := paramDB(t)
	q, err := BindSQL("SELECT t.ID FROM t WHERE t.GRP = ? AND t.VAL > ?", db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Params) != 2 || q.Params[0] != "?1" || q.Params[1] != "?2" {
		t.Fatalf("params = %v, want [?1 ?2]", q.Params)
	}
}

func TestParamSurvivesCloneAndRendersSQL(t *testing.T) {
	db := paramDB(t)
	q, err := BindSQL("SELECT t.ID FROM t WHERE t.GRP = :g", db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := q.Clone()
	if len(c.Params) != 1 || c.Params[0] != "G" {
		t.Fatalf("clone params = %v", c.Params)
	}
	if s := c.SQL(); !strings.Contains(s, ":G") {
		t.Fatalf("clone SQL lost the parameter: %s", s)
	}
	// Canonical (ordinal) rendering uses the slot, not the name, so the
	// cost cache treats differently-named but structurally identical
	// queries alike.
	if k := q.CanonicalKey(q.Root); !strings.Contains(k, ":$0") {
		t.Fatalf("canonical key should render :$0, got %s", k)
	}
}
