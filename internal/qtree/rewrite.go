package qtree

// RewriteExpr rebuilds e bottom-up applying f at every node. If f returns a
// non-nil expression for a node, that replacement is used and its children
// are not visited. Subquery blocks are not entered.
func RewriteExpr(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	if r := f(e); r != nil {
		return r
	}
	switch v := e.(type) {
	case *Const, *Col, *Subq:
		return e
	case *Bin:
		return &Bin{Op: v.Op, L: RewriteExpr(v.L, f), R: RewriteExpr(v.R, f)}
	case *Not:
		return &Not{E: RewriteExpr(v.E, f)}
	case *IsNull:
		return &IsNull{E: RewriteExpr(v.E, f), Neg: v.Neg}
	case *Like:
		return &Like{E: RewriteExpr(v.E, f), Pattern: RewriteExpr(v.Pattern, f), Neg: v.Neg}
	case *InList:
		out := &InList{E: RewriteExpr(v.E, f), Neg: v.Neg}
		for _, x := range v.Vals {
			out.Vals = append(out.Vals, RewriteExpr(x, f))
		}
		return out
	case *Func:
		out := &Func{Def: v.Def}
		for _, x := range v.Args {
			out.Args = append(out.Args, RewriteExpr(x, f))
		}
		return out
	case *LNNVL:
		return &LNNVL{E: RewriteExpr(v.E, f)}
	case *IsTrue:
		return &IsTrue{E: RewriteExpr(v.E, f)}
	case *Agg:
		out := &Agg{Op: v.Op, Star: v.Star, Distinct: v.Distinct}
		if v.Arg != nil {
			out.Arg = RewriteExpr(v.Arg, f)
		}
		return out
	case *WinFunc:
		out := &WinFunc{Op: v.Op, Star: v.Star, Running: v.Running}
		if v.Arg != nil {
			out.Arg = RewriteExpr(v.Arg, f)
		}
		for _, x := range v.PartitionBy {
			out.PartitionBy = append(out.PartitionBy, RewriteExpr(x, f))
		}
		for _, o := range v.OrderBy {
			out.OrderBy = append(out.OrderBy, OrderItem{Expr: RewriteExpr(o.Expr, f), Desc: o.Desc})
		}
		return out
	case *Case:
		out := &Case{}
		for _, w := range v.Whens {
			out.Whens = append(out.Whens, CaseWhen{
				Cond:   RewriteExpr(w.Cond, f),
				Result: RewriteExpr(w.Result, f),
			})
		}
		if v.Else != nil {
			out.Else = RewriteExpr(v.Else, f)
		}
		return out
	}
	return e
}

// RewriteBlockExprs applies RewriteExpr with f to every expression slot of
// the block in place (not descending into views or subquery blocks).
func RewriteBlockExprs(b *Block, f func(Expr) Expr) {
	for i := range b.Select {
		b.Select[i].Expr = RewriteExpr(b.Select[i].Expr, f)
	}
	for _, fi := range b.From {
		for i := range fi.Cond {
			fi.Cond[i] = RewriteExpr(fi.Cond[i], f)
		}
	}
	for i := range b.Where {
		b.Where[i] = RewriteExpr(b.Where[i], f)
	}
	for i := range b.GroupBy {
		b.GroupBy[i] = RewriteExpr(b.GroupBy[i], f)
	}
	for i := range b.Having {
		b.Having[i] = RewriteExpr(b.Having[i], f)
	}
	for i := range b.OrderBy {
		b.OrderBy[i].Expr = RewriteExpr(b.OrderBy[i].Expr, f)
	}
}

// RewriteBlockExprsDeep applies f to every expression in the block and in
// all nested views and subquery blocks. Used by transformations that
// redirect column references across block boundaries (correlated references
// must follow).
func RewriteBlockExprsDeep(b *Block, f func(Expr) Expr) {
	RewriteBlockExprs(b, f)
	for _, fi := range b.From {
		if fi.View != nil {
			RewriteBlockExprsDeep(fi.View, f)
		}
	}
	if b.Set != nil {
		for _, c := range b.Set.Children {
			RewriteBlockExprsDeep(c, f)
		}
	}
	// Subquery blocks nested in expressions.
	var subqs []*Subq
	walkBlockExprs(b, func(e Expr) {
		if s, ok := e.(*Subq); ok {
			subqs = append(subqs, s)
		}
	})
	for _, s := range subqs {
		RewriteBlockExprsDeep(s.Block, f)
	}
}
