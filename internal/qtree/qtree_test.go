package qtree

import (
	"strings"
	"testing"

	"repro/internal/testkit"
)

const q1SQL = `
SELECT e1.employee_name, j.job_title
FROM employees e1, job_history j
WHERE e1.emp_id = j.emp_id AND
  j.start_date > '19980101' AND
  e1.salary > (SELECT AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e1.dept_id) AND
  e1.dept_id IN (SELECT d.dept_id FROM departments d, locations l
                 WHERE d.loc_id = l.loc_id AND l.country_id = 'US')`

func bindQ1(t *testing.T) *Query {
	t.Helper()
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	q, err := BindSQL(q1SQL, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestBindQ1Structure(t *testing.T) {
	q := bindQ1(t)
	b := q.Root
	if len(b.From) != 2 {
		t.Fatalf("from = %d", len(b.From))
	}
	if len(b.Where) != 4 {
		t.Fatalf("where conjuncts = %d, want 4", len(b.Where))
	}
	// Locate the two subqueries.
	var scalar, in *Subq
	for _, w := range b.Where {
		WalkExpr(w, func(e Expr) bool {
			if s, ok := e.(*Subq); ok {
				switch s.Kind {
				case SubqScalar:
					scalar = s
				case SubqIn:
					in = s
				}
			}
			return true
		})
	}
	if scalar == nil || in == nil {
		t.Fatal("expected a scalar subquery and an IN subquery")
	}
	if !scalar.Block.IsCorrelated() {
		t.Error("AVG subquery should be correlated")
	}
	if in.Block.IsCorrelated() {
		t.Error("IN subquery should not be correlated")
	}
	if len(in.Block.From) != 2 {
		t.Errorf("IN subquery from = %d", len(in.Block.From))
	}
}

func TestBindErrors(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	bad := []string{
		`SELECT x.nope FROM employees x`,
		`SELECT e.emp_id FROM no_such_table e`,
		`SELECT emp_id FROM employees e, job_history j`, // ambiguous
		`SELECT e.emp_id FROM employees e, employees e`, // dup alias
		`SELECT e.emp_id FROM employees e WHERE AVG(e.salary) > 1`,
		`SELECT e.dept_id, e.salary FROM employees e GROUP BY e.dept_id`,
		`SELECT e.emp_id FROM employees e WHERE e.emp_id IN (SELECT d.dept_id, d.loc_id FROM departments d)`,
		`SELECT (SELECT d.dept_id, d.loc_id FROM departments d) FROM employees e`,
		`SELECT SUM(MAX(e.salary)) FROM employees e`,
		`SELECT NO_SUCH_FUNC(e.salary) FROM employees e`,
		`SELECT UPPER(e.employee_name, 'x') FROM employees e`,
		`SELECT e.emp_id FROM employees e UNION SELECT d.dept_id, d.loc_id FROM departments d`,
		`SELECT e.emp_id + ROWNUM FROM employees e`,
		`SELECT e.emp_id FROM employees e WHERE e.salary LIKE 'x%'`,     // LIKE on numeric column
		`SELECT e.emp_id FROM employees e WHERE e.employee_name LIKE 5`, // numeric pattern
		`SELECT e.salary || 'x' FROM employees e`,                       // || on numeric column
	}
	for _, src := range bad {
		if _, err := BindSQL(src, db.Catalog); err == nil {
			t.Errorf("BindSQL(%q) should fail", src)
		}
	}
}

func TestBindStringOperandOK(t *testing.T) {
	// String-typed columns and literals pass the bind-time LIKE / || checks;
	// kinds that cannot be resolved statically are left for runtime.
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	good := []string{
		`SELECT e.emp_id FROM employees e WHERE e.employee_name LIKE 'A%'`,
		`SELECT e.employee_name || '!' FROM employees e`,
		`SELECT e.emp_id FROM employees e WHERE UPPER(e.employee_name) LIKE 'A%'`,
	}
	for _, src := range good {
		if _, err := BindSQL(src, db.Catalog); err != nil {
			t.Errorf("BindSQL(%q): %v", src, err)
		}
	}
}

func TestBindAmbiguousOuterOK(t *testing.T) {
	// emp_id exists in both employees and job_history, but inside the
	// subquery the inner e2 binds first, so no ambiguity.
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	src := `SELECT e.emp_id FROM employees e WHERE EXISTS
	        (SELECT 1 FROM job_history j WHERE j.emp_id = e.emp_id)`
	if _, err := BindSQL(src, db.Catalog); err != nil {
		t.Fatal(err)
	}
}

func TestRownumBecomesLimit(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	q, err := BindSQL(`SELECT e.emp_id FROM employees e WHERE rownum < 20 AND e.salary > 0`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if q.Root.Limit != 19 {
		t.Errorf("limit = %d, want 19", q.Root.Limit)
	}
	if len(q.Root.Where) != 1 {
		t.Errorf("where conjuncts = %d, want 1", len(q.Root.Where))
	}
	q, err = BindSQL(`SELECT e.emp_id FROM employees e WHERE 20 >= rownum`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if q.Root.Limit != 20 {
		t.Errorf("limit = %d, want 20", q.Root.Limit)
	}
}

func TestBindLeftOuterJoin(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	q, err := BindSQL(`
SELECT e.employee_name, d.department_name
FROM employees e LEFT OUTER JOIN departments d ON e.dept_id = d.dept_id
WHERE e.salary > 100`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	b := q.Root
	if len(b.From) != 2 {
		t.Fatalf("from = %d", len(b.From))
	}
	d := b.From[1]
	if d.Kind != JoinLeftOuter || len(d.Cond) != 1 {
		t.Errorf("outer join item: kind=%v cond=%d", d.Kind, len(d.Cond))
	}
}

func TestBindRowid(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	q, err := BindSQL(`SELECT j.rowid FROM job_history j`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	c := q.Root.Select[0].Expr.(*Col)
	if c.Ord != db.Catalog.Table("JOB_HISTORY").RowidOrdinal() {
		t.Errorf("rowid ordinal = %d", c.Ord)
	}
}

func TestBindGroupingSetsAndRollup(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	q, err := BindSQL(`
SELECT s.country_id, s.state_id, SUM(s.amount) total
FROM sales s GROUP BY ROLLUP(s.country_id, s.state_id)`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	b := q.Root
	if len(b.GroupingSets) != 3 {
		t.Fatalf("rollup sets = %d, want 3", len(b.GroupingSets))
	}
	if len(b.GroupingSets[0]) != 2 || len(b.GroupingSets[2]) != 0 {
		t.Errorf("rollup shape wrong: %v", b.GroupingSets)
	}
}

func TestBindSetOps(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	q, err := BindSQL(`
SELECT e.emp_id FROM employees e
UNION ALL SELECT j.emp_id FROM job_history j
UNION ALL SELECT s.emp_id FROM sales s`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if q.Root.Set == nil || q.Root.Set.Kind != SetUnionAll {
		t.Fatal("expected UNION ALL block")
	}
	if len(q.Root.Set.Children) != 3 {
		t.Errorf("union-all flattening: children = %d, want 3", len(q.Root.Set.Children))
	}
}

func TestCloneRemapsIDs(t *testing.T) {
	q := bindQ1(t)
	clone, remap := q.Clone()
	// All from IDs must be remapped to new IDs.
	orig := map[FromID]bool{}
	visitFromItems(q.Root, func(f *FromItem) { orig[f.ID] = true })
	cloned := map[FromID]bool{}
	visitFromItems(clone.Root, func(f *FromItem) { cloned[f.ID] = true })
	if len(orig) != len(cloned) {
		t.Fatalf("item counts differ: %d vs %d", len(orig), len(cloned))
	}
	if len(orig) != 5 {
		t.Fatalf("Q1 has 5 from items (e1, j, e2, d, l), got %d", len(orig))
	}
	for id := range orig {
		n := remap.Lookup(id)
		if !cloned[n] {
			t.Errorf("remap of %d = %d not present in clone", id, n)
		}
	}
	// No reference in the clone points to an original ID.
	refs := map[FromID]bool{}
	collectBlockRefs(clone.Root, refs)
	for id := range refs {
		if !cloned[id] {
			t.Errorf("clone references unknown from ID %d", id)
		}
	}
}

func TestClonePreservesSQL(t *testing.T) {
	q := bindQ1(t)
	clone, _ := q.Clone()
	// Canonical rendering must be identical: same structure, different IDs.
	if q.CanonicalKey(q.Root) != clone.CanonicalKey(clone.Root) {
		t.Errorf("canonical keys differ:\n%s\n%s",
			q.CanonicalKey(q.Root), clone.CanonicalKey(clone.Root))
	}
}

func TestCloneIsDeep(t *testing.T) {
	q := bindQ1(t)
	clone, _ := q.Clone()
	// Mutating the clone must not affect the original.
	before := q.SQL()
	clone.Root.Where = clone.Root.Where[:1]
	clone.Root.From = clone.Root.From[:1]
	if q.SQL() != before {
		t.Error("mutating clone changed original")
	}
}

func TestCloneBlockIntoPreservesCorrelation(t *testing.T) {
	q := bindQ1(t)
	// Find the correlated AVG subquery.
	var sub *Block
	for _, w := range q.Root.Where {
		WalkExpr(w, func(e Expr) bool {
			if s, ok := e.(*Subq); ok && s.Kind == SubqScalar {
				sub = s.Block
			}
			return true
		})
	}
	if sub == nil {
		t.Fatal("no scalar subquery")
	}
	outerBefore := sub.OuterRefs()
	cl := CloneBlockInto(sub, q)
	outerAfter := cl.OuterRefs()
	if len(outerBefore) != 1 || len(outerAfter) != 1 {
		t.Fatalf("outer refs: before=%d after=%d", len(outerBefore), len(outerAfter))
	}
	for id := range outerBefore {
		if !outerAfter[id] {
			t.Error("correlated reference should be preserved by block clone")
		}
	}
	// Local items must have new IDs.
	if cl.From[0].ID == sub.From[0].ID {
		t.Error("local from item should get a fresh ID")
	}
}

func TestOuterRefs(t *testing.T) {
	q := bindQ1(t)
	if q.Root.IsCorrelated() {
		t.Error("root block cannot be correlated")
	}
}

func TestSQLRendering(t *testing.T) {
	q := bindQ1(t)
	s := q.SQL()
	for _, want := range []string{"SELECT", "EMPLOYEES e1", "JOB_HISTORY j", "AVG(", "IN (SELECT"} {
		if !strings.Contains(s, want) {
			t.Errorf("SQL missing %q in:\n%s", want, s)
		}
	}
}

func TestCanonicalKeyDiffersAfterMutation(t *testing.T) {
	q := bindQ1(t)
	clone, _ := q.Clone()
	clone.Root.Where = clone.Root.Where[:2]
	if q.CanonicalKey(q.Root) == clone.CanonicalKey(clone.Root) {
		t.Error("canonical keys should differ for structurally different blocks")
	}
}

func TestSplitAndAll(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	q, err := BindSQL(`SELECT e.emp_id FROM employees e WHERE e.salary > 1 AND e.dept_id = 2 AND e.emp_id < 100`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Root.Where) != 3 {
		t.Fatalf("conjuncts = %d", len(q.Root.Where))
	}
	joined := AndAll(q.Root.Where)
	if got := len(SplitAnd(joined)); got != 3 {
		t.Errorf("SplitAnd(AndAll) = %d conjuncts", got)
	}
}

func TestHasGroupByAndOutCols(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	q, err := BindSQL(`SELECT AVG(e.salary) avg_sal FROM employees e`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Root.HasGroupBy() {
		t.Error("implicit aggregation should count as grouped")
	}
	cols := q.Root.OutCols()
	if len(cols) != 1 || cols[0] != "avg_sal" {
		t.Errorf("out cols = %v", cols)
	}
}

func TestBetweenDesugars(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	q, err := BindSQL(`SELECT e.emp_id FROM employees e WHERE e.salary BETWEEN 10 AND 20`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Root.Where) != 2 {
		t.Errorf("BETWEEN should desugar to 2 conjuncts, got %d", len(q.Root.Where))
	}
}

func TestNotFoldsSubqueries(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	q, err := BindSQL(`SELECT e.emp_id FROM employees e WHERE NOT EXISTS
	  (SELECT 1 FROM job_history j WHERE j.emp_id = e.emp_id)`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := q.Root.Where[0].(*Subq)
	if !ok || s.Kind != SubqNotExists {
		t.Errorf("NOT EXISTS should fold into SubqNotExists, got %v", q.Root.Where[0])
	}
}

func TestQuantBinding(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	cases := []struct {
		src  string
		kind SubqKind
	}{
		{`SELECT e.emp_id FROM employees e WHERE e.dept_id = ANY (SELECT d.dept_id FROM departments d)`, SubqIn},
		{`SELECT e.emp_id FROM employees e WHERE e.dept_id <> ALL (SELECT d.dept_id FROM departments d)`, SubqNotIn},
		{`SELECT e.emp_id FROM employees e WHERE e.salary > ANY (SELECT d.budget FROM departments d)`, SubqAnyCmp},
		{`SELECT e.emp_id FROM employees e WHERE e.salary > ALL (SELECT d.budget FROM departments d)`, SubqAllCmp},
	}
	for _, c := range cases {
		q, err := BindSQL(c.src, db.Catalog)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		s, ok := q.Root.Where[0].(*Subq)
		if !ok || s.Kind != c.kind {
			t.Errorf("%s: kind = %v, want %v", c.src, s.Kind, c.kind)
		}
	}
}

func TestOrderByAlias(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	q, err := BindSQL(`SELECT e.dept_id, AVG(e.salary) avg_sal FROM employees e
		GROUP BY e.dept_id ORDER BY avg_sal DESC`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Root.OrderBy) != 1 || !q.Root.OrderBy[0].Desc {
		t.Fatal("order by")
	}
	if _, ok := q.Root.OrderBy[0].Expr.(*Agg); !ok {
		t.Error("alias should resolve to the aggregate expression")
	}
}

func TestStarExpansion(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	q, err := BindSQL(`SELECT * FROM departments d`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Root.Select) != 4 {
		t.Errorf("star expanded to %d columns, want 4 (rowid excluded)", len(q.Root.Select))
	}
	q, err = BindSQL(`SELECT d.* , l.city FROM departments d, locations l WHERE d.loc_id = l.loc_id`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Root.Select) != 5 {
		t.Errorf("qualified star: %d columns, want 5", len(q.Root.Select))
	}
}

func TestViewColumnsResolve(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	q, err := BindSQL(`
SELECT v.avg_sal, v.dept_id
FROM (SELECT AVG(e.salary) avg_sal, e.dept_id FROM employees e GROUP BY e.dept_id) v
WHERE v.avg_sal > 100`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	c := q.Root.Select[0].Expr.(*Col)
	if c.Ord != 0 {
		t.Errorf("avg_sal should be view ordinal 0, got %d", c.Ord)
	}
	v := q.Root.From[0]
	if v.View == nil || !v.View.HasGroupBy() {
		t.Error("from item should be a group-by view")
	}
}

func TestWindowFunctionBindAndClone(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	q, err := BindSQL(`
SELECT a.acct_id, AVG(a.balance) OVER (PARTITION BY a.acct_id ORDER BY a.time) ravg
FROM accounts a`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := q.Root.Select[1].Expr.(*WinFunc)
	if !ok || w.Op != WinAvg || !w.Running {
		t.Fatalf("window bind: %T", q.Root.Select[1].Expr)
	}
	if q.Root.HasGroupBy() {
		t.Error("window function must not imply grouping")
	}
	if !q.Root.HasWindowFuncs() {
		t.Error("HasWindowFuncs")
	}
	clone, _ := q.Clone()
	if q.CanonicalKey(q.Root) != clone.CanonicalKey(clone.Root) {
		t.Error("window clone should preserve canonical form")
	}
}

func TestKitchenSinkRendering(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	// One query touching nearly every expression form, rendered both as
	// display SQL and canonical key, plus String() on raw expressions.
	q, err := BindSQL(`
SELECT DISTINCT e.employee_name || '-x' n,
       CASE WHEN e.salary >= 5000 THEN 'high' ELSE 'low' END band,
       NVL(e.mgr_id, -1) mgr,
       COUNT(*) OVER (PARTITION BY e.dept_id) cnt
FROM employees e
WHERE e.salary BETWEEN 100 AND 9999
  AND e.employee_name LIKE 'emp%'
  AND e.dept_id IN (1, 2, 3)
  AND e.mgr_id IS NOT NULL
  AND NOT (e.job_id = 5 OR e.job_id = 6)
  AND e.emp_id IN (SELECT j.emp_id FROM job_history j WHERE j.start_date > '19990101')
  AND e.salary > ANY (SELECT d.budget / 100 FROM departments d)
  AND e.salary < ALL (SELECT d2.budget FROM departments d2)`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	s := q.SQL()
	for _, want := range []string{"DISTINCT", "CASE", "NVL", "OVER", "LIKE", "IN (1, 2, 3)", "IS NOT NULL", "ANY", "ALL"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
	key := q.CanonicalKey(q.Root)
	if key == "" || key == s {
		t.Error("canonical key should differ from display SQL")
	}
	// Raw String() on every expression (exercise debug rendering).
	q.Root.VisitExprs(func(e Expr) {
		if e.String() == "" {
			t.Errorf("empty String() for %T", e)
		}
	})
	// Clone remains renderable and canonical-equal.
	clone, _ := q.Clone()
	if clone.CanonicalKey(clone.Root) != key {
		t.Error("clone canonical key differs")
	}
}

func TestFullOuterJoinBinding(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	q, err := BindSQL(`
SELECT d.department_name, e.employee_name
FROM departments d FULL OUTER JOIN employees e ON d.dept_id = e.dept_id`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if q.Root.From[1].Kind != JoinFullOuter {
		t.Errorf("kind = %v", q.Root.From[1].Kind)
	}
	// RIGHT JOIN normalizes: employees becomes the padded side.
	q, err = BindSQL(`
SELECT d.department_name, e.employee_name
FROM employees e RIGHT OUTER JOIN departments d ON d.dept_id = e.dept_id`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if q.Root.From[0].Kind != JoinLeftOuter {
		t.Errorf("normalized kind = %v on %v", q.Root.From[0].Kind, q.Root.From[0].Alias)
	}
}
