package qtree

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sql"
)

// DMLKind distinguishes the three mutation statements.
type DMLKind int

// DML statement kinds.
const (
	DMLInsert DMLKind = iota
	DMLUpdate
	DMLDelete
)

func (k DMLKind) String() string {
	switch k {
	case DMLInsert:
		return "INSERT"
	case DMLUpdate:
		return "UPDATE"
	case DMLDelete:
		return "DELETE"
	}
	return "?"
}

// DMLStmt is a bound mutation statement. Row location and value sourcing
// reuse the full query machinery: Read is an ordinary bound query that the
// cost-based optimizer plans like any SELECT, producing per target row
//
//	INSERT ... SELECT:  the source column values,
//	UPDATE:             the target ROWID followed by the new SET values,
//	DELETE:             the target ROWID,
//
// so updates and deletes benefit from index access paths and every
// transformation the optimizer knows. The INSERT ... VALUES form needs no
// read query: Values holds the bound scalar rows.
type DMLStmt struct {
	Kind  DMLKind
	Table *catalog.Table
	// TargetCols are the table column ordinals being written: the insert
	// target list (identity permutation when no explicit column list), or
	// the SET columns of an update, in statement order.
	TargetCols []int
	Values     [][]Expr // INSERT ... VALUES rows; nil for the other forms
	Read       *Query   // nil only for the VALUES form
	// Params lists the statement's bind-parameter names in ordinal order
	// (shared with Read when Read is non-nil).
	Params []string
}

// BindStatement binds any parsed statement: queries bind to *Query,
// mutations to *DMLStmt.
func BindStatement(stmt sql.Stmt, cat *catalog.Catalog) (interface{}, error) {
	switch v := stmt.(type) {
	case *sql.SelectStmt:
		return Bind(v, cat)
	case *sql.InsertStmt:
		return BindInsert(v, cat)
	case *sql.UpdateStmt:
		return BindUpdate(v, cat)
	case *sql.DeleteStmt:
		return BindDelete(v, cat)
	}
	return nil, fmt.Errorf("qtree: unknown statement %T", stmt)
}

// BindDMLSQL parses and binds one DML statement from SQL text.
func BindDMLSQL(src string, cat *catalog.Catalog) (*DMLStmt, error) {
	stmt, err := sql.ParseStatement(src)
	if err != nil {
		return nil, err
	}
	bound, err := BindStatement(stmt, cat)
	if err != nil {
		return nil, err
	}
	dml, ok := bound.(*DMLStmt)
	if !ok {
		return nil, fmt.Errorf("qtree: statement is a query, not DML")
	}
	return dml, nil
}

// resolveTargetCols maps an explicit column-name list to ordinals, or
// returns the identity permutation. Duplicate targets are rejected.
func resolveTargetCols(meta *catalog.Table, cols []string) ([]int, error) {
	if cols == nil {
		out := make([]int, len(meta.Cols))
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	out := make([]int, 0, len(cols))
	seen := map[int]bool{}
	for _, name := range cols {
		ord := meta.Ordinal(name)
		if ord < 0 {
			return nil, fmt.Errorf("qtree: table %s has no column %s", meta.Name, name)
		}
		if seen[ord] {
			return nil, fmt.Errorf("qtree: column %s.%s assigned twice", meta.Name, meta.Cols[ord].Name)
		}
		seen[ord] = true
		out = append(out, ord)
	}
	return out, nil
}

// BindInsert binds an INSERT statement.
func BindInsert(stmt *sql.InsertStmt, cat *catalog.Catalog) (*DMLStmt, error) {
	meta := cat.Table(stmt.Table)
	if meta == nil {
		return nil, fmt.Errorf("qtree: table %s does not exist", stmt.Table)
	}
	targets, err := resolveTargetCols(meta, stmt.Cols)
	if err != nil {
		return nil, err
	}
	out := &DMLStmt{Kind: DMLInsert, Table: meta, TargetCols: targets}

	if stmt.Query != nil {
		q, err := Bind(stmt.Query, cat)
		if err != nil {
			return nil, err
		}
		if got := len(q.Root.OutCols()); got != len(targets) {
			return nil, fmt.Errorf("qtree: INSERT into %d column(s) from a %d-column query", len(targets), got)
		}
		out.Read = q
		out.Params = q.Params
		return out, nil
	}

	// VALUES form: scalar expressions only — no FROM scope exists, so any
	// column reference fails to resolve.
	q := NewQuery(cat)
	bd := &binder{q: q, cat: cat}
	sc := &scope{}
	for _, row := range stmt.Rows {
		if len(row) != len(targets) {
			return nil, fmt.Errorf("qtree: INSERT into %d column(s) with a %d-value row", len(targets), len(row))
		}
		bound := make([]Expr, len(row))
		for i, e := range row {
			be, err := bd.bindExpr(e, sc, false)
			if err != nil {
				return nil, err
			}
			bound[i] = be
		}
		out.Values = append(out.Values, bound)
	}
	out.Params = q.Params
	return out, nil
}

// dmlTargetScan builds the FROM entry for an UPDATE/DELETE target table.
func dmlTargetScan(table, alias string) sql.TableExpr {
	return &sql.TableName{Name: table, Alias: alias}
}

// rowidItem is the ROWID select item addressing the target rows.
func rowidItem(qual string) sql.SelectItem {
	return sql.SelectItem{Expr: &sql.ColRef{Qual: qual, Name: "ROWID"}}
}

// BindUpdate binds an UPDATE by synthesizing its locating read query:
//
//	SELECT ROWID, set-expr1, ..., set-exprK FROM t [alias] WHERE cond
func BindUpdate(stmt *sql.UpdateStmt, cat *catalog.Catalog) (*DMLStmt, error) {
	meta := cat.Table(stmt.Table)
	if meta == nil {
		return nil, fmt.Errorf("qtree: table %s does not exist", stmt.Table)
	}
	qual := stmt.Alias
	if qual == "" {
		qual = stmt.Table
	}
	var sets []int
	items := []sql.SelectItem{rowidItem(qual)}
	seen := map[int]bool{}
	for _, sc := range stmt.Set {
		ord := meta.Ordinal(sc.Col)
		if ord < 0 {
			return nil, fmt.Errorf("qtree: table %s has no column %s", meta.Name, sc.Col)
		}
		if seen[ord] {
			return nil, fmt.Errorf("qtree: column %s.%s assigned twice", meta.Name, meta.Cols[ord].Name)
		}
		seen[ord] = true
		sets = append(sets, ord)
		items = append(items, sql.SelectItem{Expr: sc.Val, Alias: "NEW_" + strings.ToUpper(sc.Col)})
	}
	read := &sql.SelectStmt{Body: &sql.Select{
		Items: items,
		From:  []sql.TableExpr{dmlTargetScan(stmt.Table, stmt.Alias)},
		Where: stmt.Where,
	}}
	q, err := Bind(read, cat)
	if err != nil {
		return nil, err
	}
	return &DMLStmt{
		Kind:       DMLUpdate,
		Table:      meta,
		TargetCols: sets,
		Read:       q,
		Params:     q.Params,
	}, nil
}

// BindDelete binds a DELETE by synthesizing its locating read query:
//
//	SELECT ROWID FROM t [alias] WHERE cond
func BindDelete(stmt *sql.DeleteStmt, cat *catalog.Catalog) (*DMLStmt, error) {
	meta := cat.Table(stmt.Table)
	if meta == nil {
		return nil, fmt.Errorf("qtree: table %s does not exist", stmt.Table)
	}
	read := &sql.SelectStmt{Body: &sql.Select{
		Items: []sql.SelectItem{rowidItem(stmt.Alias)},
		From:  []sql.TableExpr{dmlTargetScan(stmt.Table, stmt.Alias)},
		Where: stmt.Where,
	}}
	q, err := Bind(read, cat)
	if err != nil {
		return nil, err
	}
	return &DMLStmt{Kind: DMLDelete, Table: meta, Read: q, Params: q.Params}, nil
}
