package qtree

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/sql"
)

// Bind performs semantic analysis of a parsed statement against a catalog
// and produces the query tree.
func Bind(stmt *sql.SelectStmt, cat *catalog.Catalog) (*Query, error) {
	q := NewQuery(cat)
	b, err := bindSelectStmt(q, stmt, nil)
	if err != nil {
		return nil, err
	}
	q.Root = b
	return q, nil
}

// MustBind parses and binds SQL text; it panics on error. For tests and
// examples.
func MustBind(src string, cat *catalog.Catalog) *Query {
	stmt, err := sql.Parse(src)
	if err != nil {
		panic(err)
	}
	q, err := Bind(stmt, cat)
	if err != nil {
		panic(err)
	}
	return q
}

// BindSQL parses and binds SQL text.
func BindSQL(src string, cat *catalog.Catalog) (*Query, error) {
	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	return Bind(stmt, cat)
}

// bindParam resolves an AST parameter to a typed placeholder, allocating a
// parameter ordinal on the query. Named parameters with the same
// (case-insensitive) name share one ordinal; each positional "?" gets its
// own slot, named "?<n>" after its occurrence order.
func (q *Query) bindParam(p *sql.Param) *Param {
	name := strings.ToUpper(p.Name)
	if name == "" {
		name = fmt.Sprintf("?%d", p.Pos+1)
	}
	for i, n := range q.Params {
		if n == name {
			return &Param{Ord: i, Name: name}
		}
	}
	q.Params = append(q.Params, name)
	return &Param{Ord: len(q.Params) - 1, Name: name}
}

// scope is the name-resolution environment: the from items visible in the
// current block, chained to enclosing blocks for correlation.
type scope struct {
	parent *scope
	items  []*FromItem
}

func (s *scope) push(f *FromItem) { s.items = append(s.items, f) }

// binder carries catalog and query during analysis.
type binder struct {
	q   *Query
	cat *catalog.Catalog
}

func bindSelectStmt(q *Query, stmt *sql.SelectStmt, outer *scope) (*Block, error) {
	bd := &binder{q: q, cat: q.Catalog}
	b, err := bd.bindBody(stmt.Body, outer)
	if err != nil {
		return nil, err
	}
	if len(stmt.OrderBy) > 0 {
		if err := bd.bindOrderBy(b, stmt.OrderBy, outer); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func (bd *binder) bindBody(body sql.Body, outer *scope) (*Block, error) {
	switch v := body.(type) {
	case *sql.Select:
		return bd.bindSelect(v, outer)
	case *sql.SetOp:
		l, err := bd.bindBody(v.Left, outer)
		if err != nil {
			return nil, err
		}
		r, err := bd.bindBody(v.Right, outer)
		if err != nil {
			return nil, err
		}
		if len(l.OutCols()) != len(r.OutCols()) {
			return nil, fmt.Errorf("qtree: set operation children have different arity (%d vs %d)",
				len(l.OutCols()), len(r.OutCols()))
		}
		b := bd.q.NewBlock()
		var kind SetOpKind
		switch v.Kind {
		case sql.UnionOp:
			kind = SetUnion
		case sql.UnionAllOp:
			kind = SetUnionAll
		case sql.IntersectOp:
			kind = SetIntersect
		case sql.MinusOp:
			kind = SetMinus
		}
		// Flatten chains of the same UNION ALL for convenient factorization.
		b.Set = &SetOp{Kind: kind}
		if l.Set != nil && l.Set.Kind == kind && kind == SetUnionAll &&
			l.Limit == 0 && len(l.OrderBy) == 0 {
			b.Set.Children = append(b.Set.Children, l.Set.Children...)
		} else {
			b.Set.Children = append(b.Set.Children, l)
		}
		b.Set.Children = append(b.Set.Children, r)
		return b, nil
	}
	return nil, fmt.Errorf("qtree: unknown select body %T", body)
}

func (bd *binder) bindSelect(sel *sql.Select, outer *scope) (*Block, error) {
	b := bd.q.NewBlock()
	b.Distinct = sel.Distinct
	sc := &scope{parent: outer}

	for _, te := range sel.From {
		if err := bd.bindTableExpr(b, sc, te, outer); err != nil {
			return nil, err
		}
	}

	// WHERE: split conjuncts; extract rownum limits.
	if sel.Where != nil {
		for _, c := range splitAndAST(sel.Where) {
			if n, ok := rownumLimit(c); ok {
				if b.Limit == 0 || n < b.Limit {
					b.Limit = n
				}
				continue
			}
			e, err := bd.bindExpr(c, sc, false)
			if err != nil {
				return nil, err
			}
			// Desugaring (e.g. BETWEEN) can introduce new top-level ANDs.
			b.Where = append(b.Where, SplitAnd(e)...)
		}
	}

	// GROUP BY.
	if sel.GroupBy != nil {
		for _, ge := range sel.GroupBy.Exprs {
			e, err := bd.bindExpr(ge, sc, false)
			if err != nil {
				return nil, err
			}
			b.GroupBy = append(b.GroupBy, e)
		}
		switch {
		case sel.GroupBy.Rollup:
			// ROLLUP(a, b, c) = GROUPING SETS ((a,b,c), (a,b), (a), ()).
			n := len(b.GroupBy)
			for k := n; k >= 0; k-- {
				set := make([]int, k)
				for i := 0; i < k; i++ {
					set[i] = i
				}
				b.GroupingSets = append(b.GroupingSets, set)
			}
		case sel.GroupBy.Sets != nil:
			for _, astSet := range sel.GroupBy.Sets {
				var set []int
				for _, ge := range astSet {
					e, err := bd.bindExpr(ge, sc, false)
					if err != nil {
						return nil, err
					}
					idx := findExpr(b.GroupBy, e)
					if idx < 0 {
						return nil, fmt.Errorf("qtree: grouping set column not in grouping union")
					}
					set = append(set, idx)
				}
				b.GroupingSets = append(b.GroupingSets, set)
			}
		}
	}

	// Select list (after FROM/GROUP BY so aggregates and stars resolve).
	for _, item := range sel.Items {
		if item.Star {
			if err := bd.expandStar(b, sc, item.Qual); err != nil {
				return nil, err
			}
			continue
		}
		e, err := bd.bindExpr(item.Expr, sc, true)
		if err != nil {
			return nil, err
		}
		alias := item.Alias
		if alias == "" {
			if c, ok := e.(*Col); ok {
				alias = c.Name
			}
		}
		b.Select = append(b.Select, SelectItem{Expr: e, Alias: alias})
	}

	// HAVING.
	if sel.Having != nil {
		for _, c := range splitAndAST(sel.Having) {
			e, err := bd.bindExpr(c, sc, true)
			if err != nil {
				return nil, err
			}
			b.Having = append(b.Having, SplitAnd(e)...)
		}
	}

	if err := validateGrouping(b); err != nil {
		return nil, err
	}
	if err := validateWindows(b); err != nil {
		return nil, err
	}
	return b, nil
}

func (bd *binder) bindTableExpr(b *Block, sc *scope, te sql.TableExpr, outer *scope) error {
	switch v := te.(type) {
	case *sql.TableName:
		tbl := bd.cat.Table(v.Name)
		if tbl == nil {
			return fmt.Errorf("qtree: table %s does not exist", strings.ToUpper(v.Name))
		}
		alias := v.Alias
		if alias == "" {
			alias = tbl.Name
		}
		if findAlias(sc.items, alias) != nil {
			return fmt.Errorf("qtree: duplicate alias %s", alias)
		}
		f := &FromItem{ID: bd.q.NewFromID(), Alias: alias, Table: tbl}
		b.From = append(b.From, f)
		sc.push(f)
		return nil

	case *sql.DerivedTable:
		// Derived tables see only the enclosing query's outer scope, not
		// sibling from items (no LATERAL in the source dialect).
		vb, err := bindSelectStmt(bd.q, v.Select, outer)
		if err != nil {
			return err
		}
		alias := v.Alias
		if alias == "" {
			alias = fmt.Sprintf("V_%d", b.ID)
		}
		if findAlias(sc.items, alias) != nil {
			return fmt.Errorf("qtree: duplicate alias %s", alias)
		}
		f := &FromItem{ID: bd.q.NewFromID(), Alias: alias, View: vb}
		b.From = append(b.From, f)
		sc.push(f)
		return nil

	case *sql.JoinExpr:
		leftStart := len(b.From)
		if err := bd.bindTableExpr(b, sc, v.Left, outer); err != nil {
			return err
		}
		leftEnd := len(b.From)
		if err := bd.bindTableExpr(b, sc, v.Right, outer); err != nil {
			return err
		}
		on, err := bd.bindExpr(v.On, sc, false)
		if err != nil {
			return err
		}
		conds := SplitAnd(on)
		switch v.Kind {
		case sql.InnerJoin:
			b.Where = append(b.Where, conds...)
			return nil
		case sql.RightOuterJoin:
			// A RIGHT JOIN B is normalized to B LEFT JOIN A: the left
			// operand becomes the null-padded side and must be one item.
			if leftEnd-leftStart != 1 {
				return fmt.Errorf("qtree: the preserved side of RIGHT OUTER JOIN must be a single table or view")
			}
			item := b.From[leftStart]
			item.Kind = JoinLeftOuter
			item.Cond = conds
			return nil
		default:
			// LEFT/FULL OUTER JOIN: the right side must be a single item;
			// it carries the join condition and kind.
			if _, isJoin := v.Right.(*sql.JoinExpr); isJoin {
				return fmt.Errorf("qtree: nested join on the right side of an outer join is not supported")
			}
			right := b.From[len(b.From)-1]
			right.Kind = JoinLeftOuter
			if v.Kind == sql.FullOuterJoin {
				right.Kind = JoinFullOuter
			}
			right.Cond = conds
			return nil
		}
	}
	return fmt.Errorf("qtree: unknown table expression %T", te)
}

func findAlias(items []*FromItem, alias string) *FromItem {
	for _, f := range items {
		if strings.EqualFold(f.Alias, alias) {
			return f
		}
	}
	return nil
}

func (bd *binder) expandStar(b *Block, sc *scope, qual string) error {
	var items []*FromItem
	if qual == "" {
		items = sc.items
	} else {
		f := findAlias(sc.items, qual)
		if f == nil {
			return fmt.Errorf("qtree: unknown alias %s in star expansion", qual)
		}
		items = []*FromItem{f}
	}
	for _, f := range items {
		n := f.NumCols()
		if f.IsTable() {
			n = f.Table.NumCols() // exclude rowid from star expansion
		}
		for ord := 0; ord < n; ord++ {
			name := f.ColName(ord)
			b.Select = append(b.Select, SelectItem{
				Expr:  &Col{From: f.ID, Ord: ord, Name: name},
				Alias: name,
			})
		}
	}
	return nil
}

// splitAndAST splits an AST expression on top-level ANDs.
func splitAndAST(e sql.Expr) []sql.Expr {
	if b, ok := e.(*sql.BinExpr); ok && b.Op == "AND" {
		return append(splitAndAST(b.L), splitAndAST(b.R)...)
	}
	return []sql.Expr{e}
}

// SplitAnd splits a bound expression on top-level ANDs into conjuncts.
func SplitAnd(e Expr) []Expr {
	if b, ok := e.(*Bin); ok && b.Op == OpAnd {
		return append(SplitAnd(b.L), SplitAnd(b.R)...)
	}
	return []Expr{e}
}

// AndAll combines conjuncts into one expression (TRUE for none).
func AndAll(es []Expr) Expr {
	if len(es) == 0 {
		return &Const{Val: datum.NewBool(true)}
	}
	out := es[0]
	for _, e := range es[1:] {
		out = &Bin{Op: OpAnd, L: out, R: e}
	}
	return out
}

// rownumLimit recognizes "ROWNUM < n" / "ROWNUM <= n" (and mirrored forms)
// and returns the row limit.
func rownumLimit(e sql.Expr) (int64, bool) {
	b, ok := e.(*sql.BinExpr)
	if !ok {
		return 0, false
	}
	l, r, op := b.L, b.R, b.Op
	if _, ok := r.(*sql.Rownum); ok {
		l, r = r, l
		switch op {
		case "<":
			op = ">"
		case "<=":
			op = ">="
		case ">":
			op = "<"
		case ">=":
			op = "<="
		}
	}
	if _, ok := l.(*sql.Rownum); !ok {
		return 0, false
	}
	num, ok := r.(*sql.NumLit)
	if !ok || num.IsFloat {
		return 0, false
	}
	n, err := strconv.ParseInt(num.Text, 10, 64)
	if err != nil {
		return 0, false
	}
	switch op {
	case "<":
		if n <= 0 {
			return 0, false
		}
		return n - 1, true
	case "<=":
		return n, true
	}
	return 0, false
}

// findExpr returns the index of e in list by structural column equality, or
// -1. Only simple column expressions participate (grouping sets).
func findExpr(list []Expr, e Expr) int {
	ec, ok := e.(*Col)
	if !ok {
		return -1
	}
	for i, x := range list {
		if xc, ok := x.(*Col); ok && xc.From == ec.From && xc.Ord == ec.Ord {
			return i
		}
	}
	return -1
}

// SameCol reports whether two expressions are the same column reference.
func SameCol(a, b Expr) bool {
	ac, ok1 := a.(*Col)
	bc, ok2 := b.(*Col)
	return ok1 && ok2 && ac.From == bc.From && ac.Ord == bc.Ord
}

var aggOps = map[string]AggOp{
	"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

// bindExpr converts an AST expression. allowAgg permits aggregate
// references (select list, HAVING, ORDER BY).
func (bd *binder) bindExpr(e sql.Expr, sc *scope, allowAgg bool) (Expr, error) {
	switch v := e.(type) {
	case *sql.NumLit:
		if v.IsFloat {
			f, err := strconv.ParseFloat(v.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("qtree: bad numeric literal %q", v.Text)
			}
			return &Const{Val: datum.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(v.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("qtree: bad integer literal %q", v.Text)
		}
		return &Const{Val: datum.NewInt(n)}, nil

	case *sql.StrLit:
		return &Const{Val: datum.NewString(v.Val)}, nil
	case *sql.NullLit:
		return &Const{Val: datum.Null}, nil
	case *sql.BoolLit:
		return &Const{Val: datum.NewBool(v.Val)}, nil

	case *sql.ColRef:
		return bd.resolveCol(v, sc)

	case *sql.Rownum:
		return nil, fmt.Errorf("qtree: ROWNUM is only supported as a top-level 'ROWNUM < n' filter")

	case *sql.Param:
		return bd.q.bindParam(v), nil

	case *sql.BinExpr:
		op, ok := binOpFromAST(v.Op)
		if !ok {
			return nil, fmt.Errorf("qtree: unknown operator %q", v.Op)
		}
		l, err := bd.bindExpr(v.L, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		r, err := bd.bindExpr(v.R, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		if op == OpConcat {
			if err := checkStringOperand("||", l, sc); err != nil {
				return nil, err
			}
			if err := checkStringOperand("||", r, sc); err != nil {
				return nil, err
			}
		}
		return &Bin{Op: op, L: l, R: r}, nil

	case *sql.UnaryExpr:
		x, err := bd.bindExpr(v.E, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		return &Bin{Op: OpSub, L: &Const{Val: datum.NewInt(0)}, R: x}, nil

	case *sql.NotExpr:
		inner, err := bd.bindExpr(v.E, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		// Fold NOT over subquery predicates.
		if s, ok := inner.(*Subq); ok {
			switch s.Kind {
			case SubqExists:
				s.Kind = SubqNotExists
				return s, nil
			case SubqNotExists:
				s.Kind = SubqExists
				return s, nil
			case SubqIn:
				s.Kind = SubqNotIn
				return s, nil
			case SubqNotIn:
				s.Kind = SubqIn
				return s, nil
			}
		}
		return &Not{E: inner}, nil

	case *sql.IsNull:
		x, err := bd.bindExpr(v.E, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		return &IsNull{E: x, Neg: v.Not}, nil

	case *sql.Between:
		x, err := bd.bindExpr(v.E, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		lo, err := bd.bindExpr(v.Lo, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		hi, err := bd.bindExpr(v.Hi, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		rng := &Bin{Op: OpAnd,
			L: &Bin{Op: OpGe, L: x, R: lo},
			R: &Bin{Op: OpLe, L: x.Clone(&Remap{IDs: map[FromID]FromID{}, dst: bd.q}), R: hi},
		}
		if v.Not {
			return &Not{E: rng}, nil
		}
		return rng, nil

	case *sql.Like:
		x, err := bd.bindExpr(v.E, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		pat, err := bd.bindExpr(v.Pattern, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		if err := checkStringOperand("LIKE", x, sc); err != nil {
			return nil, err
		}
		if err := checkStringOperand("LIKE", pat, sc); err != nil {
			return nil, err
		}
		return &Like{E: x, Pattern: pat, Neg: v.Not}, nil

	case *sql.InExpr:
		if v.Subquery != nil {
			var left []Expr
			for _, le := range v.Left {
				x, err := bd.bindExpr(le, sc, allowAgg)
				if err != nil {
					return nil, err
				}
				left = append(left, x)
			}
			sub, err := bindSelectStmt(bd.q, v.Subquery, sc)
			if err != nil {
				return nil, err
			}
			if len(sub.OutCols()) != len(left) {
				return nil, fmt.Errorf("qtree: IN subquery arity mismatch: %d vs %d",
					len(left), len(sub.OutCols()))
			}
			kind := SubqIn
			if v.Not {
				kind = SubqNotIn
			}
			return &Subq{Kind: kind, Op: OpEq, Left: left, Block: sub}, nil
		}
		x, err := bd.bindExpr(v.Left[0], sc, allowAgg)
		if err != nil {
			return nil, err
		}
		var vals []Expr
		for _, ve := range v.List {
			bv, err := bd.bindExpr(ve, sc, allowAgg)
			if err != nil {
				return nil, err
			}
			vals = append(vals, bv)
		}
		return &InList{E: x, Vals: vals, Neg: v.Not}, nil

	case *sql.Exists:
		sub, err := bindSelectStmt(bd.q, v.Subquery, sc)
		if err != nil {
			return nil, err
		}
		kind := SubqExists
		if v.Not {
			kind = SubqNotExists
		}
		return &Subq{Kind: kind, Block: sub}, nil

	case *sql.Quant:
		var left []Expr
		for _, le := range v.Left {
			x, err := bd.bindExpr(le, sc, allowAgg)
			if err != nil {
				return nil, err
			}
			left = append(left, x)
		}
		sub, err := bindSelectStmt(bd.q, v.Subquery, sc)
		if err != nil {
			return nil, err
		}
		if len(sub.OutCols()) != len(left) {
			return nil, fmt.Errorf("qtree: quantified subquery arity mismatch")
		}
		op, ok := binOpFromAST(v.Op)
		if !ok || !op.IsComparison() {
			return nil, fmt.Errorf("qtree: bad quantified comparison %q", v.Op)
		}
		switch {
		case !v.All && op == OpEq:
			return &Subq{Kind: SubqIn, Op: OpEq, Left: left, Block: sub}, nil
		case v.All && op == OpNe:
			return &Subq{Kind: SubqNotIn, Op: OpEq, Left: left, Block: sub}, nil
		case !v.All:
			return &Subq{Kind: SubqAnyCmp, Op: op, Left: left, Block: sub}, nil
		default:
			return &Subq{Kind: SubqAllCmp, Op: op, Left: left, Block: sub}, nil
		}

	case *sql.ScalarSubquery:
		sub, err := bindSelectStmt(bd.q, v.Subquery, sc)
		if err != nil {
			return nil, err
		}
		if len(sub.OutCols()) != 1 {
			return nil, fmt.Errorf("qtree: scalar subquery must return one column")
		}
		return &Subq{Kind: SubqScalar, Block: sub}, nil

	case *sql.FuncCall:
		if v.Over != nil {
			return bd.bindWindow(v, sc)
		}
		if aggOp, ok := aggOps[v.Name]; ok {
			if !allowAgg {
				return nil, fmt.Errorf("qtree: aggregate %s not allowed here", v.Name)
			}
			if v.Star {
				if aggOp != AggCount {
					return nil, fmt.Errorf("qtree: %s(*) is not valid", v.Name)
				}
				return &Agg{Op: AggCount, Star: true}, nil
			}
			if len(v.Args) != 1 {
				return nil, fmt.Errorf("qtree: aggregate %s takes one argument", v.Name)
			}
			arg, err := bd.bindExpr(v.Args[0], sc, false)
			if err != nil {
				return nil, err
			}
			if ContainsAgg(arg) {
				return nil, fmt.Errorf("qtree: nested aggregates are not allowed")
			}
			return &Agg{Op: aggOp, Arg: arg, Distinct: v.Distinct}, nil
		}
		def := bd.cat.Func(v.Name)
		if def == nil {
			return nil, fmt.Errorf("qtree: unknown function %s", v.Name)
		}
		if len(v.Args) < def.MinArgs || len(v.Args) > def.MaxArgs {
			return nil, fmt.Errorf("qtree: %s takes %d..%d arguments, got %d",
				def.Name, def.MinArgs, def.MaxArgs, len(v.Args))
		}
		var args []Expr
		for _, ae := range v.Args {
			x, err := bd.bindExpr(ae, sc, allowAgg)
			if err != nil {
				return nil, err
			}
			args = append(args, x)
		}
		return &Func{Def: def, Args: args}, nil

	case *sql.CaseExpr:
		c := &Case{}
		for _, w := range v.Whens {
			cond, err := bd.bindExpr(w.Cond, sc, allowAgg)
			if err != nil {
				return nil, err
			}
			res, err := bd.bindExpr(w.Result, sc, allowAgg)
			if err != nil {
				return nil, err
			}
			c.Whens = append(c.Whens, CaseWhen{Cond: cond, Result: res})
		}
		if v.Else != nil {
			x, err := bd.bindExpr(v.Else, sc, allowAgg)
			if err != nil {
				return nil, err
			}
			c.Else = x
		}
		return c, nil
	}
	return nil, fmt.Errorf("qtree: unsupported expression %T", e)
}

var winOps = map[string]WinOp{
	"COUNT": WinCount, "SUM": WinSum, "AVG": WinAvg,
	"MIN": WinMin, "MAX": WinMax, "ROW_NUMBER": WinRowNumber,
}

// bindWindow binds a window (analytic) function reference.
func (bd *binder) bindWindow(v *sql.FuncCall, sc *scope) (Expr, error) {
	op, ok := winOps[v.Name]
	if !ok {
		return nil, fmt.Errorf("qtree: %s is not a window function", v.Name)
	}
	if v.Distinct {
		return nil, fmt.Errorf("qtree: DISTINCT window aggregates are not supported")
	}
	w := &WinFunc{Op: op, Running: v.Over.Running}
	switch {
	case op == WinRowNumber:
		if len(v.Args) != 0 || v.Star {
			return nil, fmt.Errorf("qtree: ROW_NUMBER takes no arguments")
		}
		if len(v.Over.OrderBy) == 0 {
			return nil, fmt.Errorf("qtree: ROW_NUMBER requires ORDER BY in its window")
		}
	case v.Star:
		if op != WinCount {
			return nil, fmt.Errorf("qtree: %s(*) is not valid", v.Name)
		}
		w.Star = true
	default:
		if len(v.Args) != 1 {
			return nil, fmt.Errorf("qtree: window %s takes one argument", v.Name)
		}
		arg, err := bd.bindExpr(v.Args[0], sc, false)
		if err != nil {
			return nil, err
		}
		w.Arg = arg
	}
	for _, pe := range v.Over.PartitionBy {
		e, err := bd.bindExpr(pe, sc, false)
		if err != nil {
			return nil, err
		}
		w.PartitionBy = append(w.PartitionBy, e)
	}
	for _, oi := range v.Over.OrderBy {
		e, err := bd.bindExpr(oi.Expr, sc, false)
		if err != nil {
			return nil, err
		}
		w.OrderBy = append(w.OrderBy, OrderItem{Expr: e, Desc: oi.Desc})
	}
	return w, nil
}

// ContainsWindow reports whether e contains a window function reference.
func ContainsWindow(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		switch x.(type) {
		case *WinFunc:
			found = true
			return false
		case *Subq:
			return false
		}
		return !found
	})
	return found
}

// HasWindowFuncs reports whether any select item of the block contains a
// window function.
func (b *Block) HasWindowFuncs() bool {
	for _, it := range b.Select {
		if ContainsWindow(it.Expr) {
			return true
		}
	}
	return false
}

// validateWindows enforces the supported placement of window functions:
// select list only, not combined with grouping, not nested.
func validateWindows(b *Block) error {
	check := func(e Expr, where string) error {
		if ContainsWindow(e) {
			return fmt.Errorf("qtree: window functions are only allowed in the select list (%s)", where)
		}
		return nil
	}
	for _, e := range b.Where {
		if err := check(e, "where"); err != nil {
			return err
		}
	}
	for _, e := range b.GroupBy {
		if err := check(e, "group by"); err != nil {
			return err
		}
	}
	for _, e := range b.Having {
		if err := check(e, "having"); err != nil {
			return err
		}
	}
	if b.HasWindowFuncs() {
		if b.HasGroupBy() {
			return fmt.Errorf("qtree: window functions combined with GROUP BY are not supported")
		}
		// No window inside another window or inside an aggregate.
		bad := false
		for _, it := range b.Select {
			WalkExpr(it.Expr, func(x Expr) bool {
				if w, ok := x.(*WinFunc); ok {
					if w.Arg != nil && ContainsWindow(w.Arg) {
						bad = true
					}
					return false
				}
				return true
			})
		}
		if bad {
			return fmt.Errorf("qtree: nested window functions are not supported")
		}
	}
	return nil
}

func binOpFromAST(op string) (BinOp, bool) {
	switch op {
	case "+":
		return OpAdd, true
	case "-":
		return OpSub, true
	case "*":
		return OpMul, true
	case "/":
		return OpDiv, true
	case "||":
		return OpConcat, true
	case "=":
		return OpEq, true
	case "<>":
		return OpNe, true
	case "<":
		return OpLt, true
	case "<=":
		return OpLe, true
	case ">":
		return OpGt, true
	case ">=":
		return OpGe, true
	case "AND":
		return OpAnd, true
	case "OR":
		return OpOr, true
	}
	return 0, false
}

// resolveCol resolves a (possibly qualified) column name against the scope
// chain, innermost first.
func (bd *binder) resolveCol(ref *sql.ColRef, sc *scope) (Expr, error) {
	for s := sc; s != nil; s = s.parent {
		var matches []*Col
		for _, f := range s.items {
			if ref.Qual != "" && !strings.EqualFold(f.Alias, ref.Qual) {
				continue
			}
			if ord, ok := itemColOrdinal(f, ref.Name); ok {
				matches = append(matches, &Col{From: f.ID, Ord: ord, Name: strings.ToUpper(ref.Name)})
			}
		}
		if len(matches) > 1 {
			return nil, fmt.Errorf("qtree: ambiguous column %s", colDisplay(ref))
		}
		if len(matches) == 1 {
			return matches[0], nil
		}
	}
	return nil, fmt.Errorf("qtree: unknown column %s", colDisplay(ref))
}

func colDisplay(ref *sql.ColRef) string {
	if ref.Qual != "" {
		return ref.Qual + "." + ref.Name
	}
	return ref.Name
}

// itemColOrdinal finds the output ordinal of name in a from item.
func itemColOrdinal(f *FromItem, name string) (int, bool) {
	if f.Table != nil {
		if strings.EqualFold(name, "ROWID") {
			return f.Table.RowidOrdinal(), true
		}
		if ord := f.Table.Ordinal(name); ord >= 0 {
			return ord, true
		}
		return 0, false
	}
	for i, cn := range f.View.OutCols() {
		if strings.EqualFold(cn, name) {
			return i, true
		}
	}
	return 0, false
}

// staticKind resolves the statically known kind of a bound expression:
// literals, and column references that resolve to base-table columns.
// ok is false when the kind cannot be determined at bind time (views,
// computed expressions, NULL literals).
func staticKind(e Expr, sc *scope) (kind datum.Kind, what string, ok bool) {
	switch v := e.(type) {
	case *Const:
		if v.Val.IsNull() {
			return datum.KNull, "", false
		}
		return v.Val.Kind(), v.Val.String(), true
	case *Col:
		for s := sc; s != nil; s = s.parent {
			for _, f := range s.items {
				if f.ID != v.From || f.Table == nil {
					continue
				}
				if v.Ord >= 0 && v.Ord < len(f.Table.Cols) {
					c := f.Table.Cols[v.Ord]
					return c.Type, f.Table.Name + "." + c.Name, true
				}
				return datum.KNull, "", false // rowid
			}
		}
	}
	return datum.KNull, "", false
}

// checkStringOperand rejects operands of string-only operators (LIKE, ||)
// whose kind is statically known to be non-string, so the mismatch is a
// bind-time query error instead of a runtime one.
func checkStringOperand(op string, e Expr, sc *scope) error {
	k, what, ok := staticKind(e, sc)
	if ok && k != datum.KString {
		return fmt.Errorf("qtree: %s requires string operands: %s has type %s", op, what, k)
	}
	return nil
}

// bindOrderBy binds ORDER BY items against block b: select-list aliases
// first, then the block's from scope.
func (bd *binder) bindOrderBy(b *Block, items []sql.OrderItem, outer *scope) error {
	sc := &scope{parent: outer}
	if b.Set == nil {
		sc.items = b.From
	}
	for _, oi := range items {
		// Alias reference?
		if cr, ok := oi.Expr.(*sql.ColRef); ok && cr.Qual == "" {
			if idx := outColIndex(b, cr.Name); idx >= 0 {
				var e Expr
				if b.Set != nil {
					// Positional reference into the set operation's output.
					e = &Col{From: 0, Ord: idx, Name: strings.ToUpper(cr.Name)}
				} else {
					e = b.Select[idx].Expr.Clone(&Remap{IDs: map[FromID]FromID{}, dst: bd.q})
				}
				b.OrderBy = append(b.OrderBy, OrderItem{Expr: e, Desc: oi.Desc})
				continue
			}
		}
		if b.Set != nil {
			return fmt.Errorf("qtree: ORDER BY on a set operation must name an output column")
		}
		e, err := bd.bindExpr(oi.Expr, sc, true)
		if err != nil {
			return err
		}
		b.OrderBy = append(b.OrderBy, OrderItem{Expr: e, Desc: oi.Desc})
	}
	return nil
}

func outColIndex(b *Block, name string) int {
	for i, cn := range b.OutCols() {
		if strings.EqualFold(cn, name) {
			return i
		}
	}
	return -1
}

// validateGrouping checks that in a grouped block every naked column
// reference in the select list, HAVING and ORDER BY appears in GROUP BY.
func validateGrouping(b *Block) error {
	if !b.HasGroupBy() {
		// Aggregates were already rejected in WHERE during binding.
		return nil
	}
	grouped := func(c *Col) bool {
		for _, g := range b.GroupBy {
			if gc, ok := g.(*Col); ok && gc.From == c.From && gc.Ord == c.Ord {
				return true
			}
		}
		return false
	}
	local := b.LocalFromIDs()
	check := func(e Expr, clause string) error {
		var bad *Col
		WalkExpr(e, func(x Expr) bool {
			if bad != nil {
				return false
			}
			switch v := x.(type) {
			case *Agg:
				return false // columns under aggregates are fine
			case *Subq:
				return false // subqueries validated separately
			case *Col:
				// Only local references must be grouped; correlated outer
				// references are constant per group.
				if local[v.From] && !grouped(v) {
					bad = v
				}
			}
			return true
		})
		if bad != nil {
			return fmt.Errorf("qtree: column %s must appear in GROUP BY (%s clause)", bad.Name, clause)
		}
		return nil
	}
	for _, it := range b.Select {
		if err := check(it.Expr, "select"); err != nil {
			return err
		}
	}
	for _, h := range b.Having {
		if err := check(h, "having"); err != nil {
			return err
		}
	}
	for _, o := range b.OrderBy {
		if err := check(o.Expr, "order by"); err != nil {
			return err
		}
	}
	return nil
}
