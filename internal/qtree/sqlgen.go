package qtree

import (
	"fmt"
	"sort"
	"strings"
)

// Namer maps from-item IDs to display aliases during SQL rendering.
type Namer struct {
	names map[FromID]string
	// ordinals switches column rendering from names to output ordinals,
	// which makes the rendering canonical (independent of aliasing).
	ordinals bool
}

// name returns the rendered alias for a from item.
func (n *Namer) name(id FromID) string {
	if s, ok := n.names[id]; ok {
		return s
	}
	return fmt.Sprintf("q%d", id)
}

// DisplayNamer builds a namer from the from-item aliases in the query,
// disambiguating duplicates with the item ID.
func (q *Query) DisplayNamer() *Namer {
	n := &Namer{names: map[FromID]string{}}
	used := map[string]bool{}
	visitFromItems(q.Root, func(f *FromItem) {
		alias := f.Alias
		if alias == "" {
			alias = fmt.Sprintf("T%d", f.ID)
		}
		key := strings.ToUpper(alias)
		if used[key] {
			alias = fmt.Sprintf("%s_%d", alias, f.ID)
			key = strings.ToUpper(alias)
		}
		used[key] = true
		n.names[f.ID] = alias
	})
	return n
}

// CanonicalNamer assigns position-based aliases (t0, t1, ...) in a
// deterministic traversal order over the whole query, so that two
// structurally identical queries render identically regardless of the
// from IDs they carry. This underpins cost-annotation reuse (§3.4.2):
// untransformed copies of a query block produce the same canonical key.
func (q *Query) CanonicalNamer() *Namer {
	n := &Namer{names: map[FromID]string{}, ordinals: true}
	i := 0
	visitFromItems(q.Root, func(f *FromItem) {
		n.names[f.ID] = fmt.Sprintf("t%d", i)
		i++
	})
	return n
}

// visitFromItems walks every from item in the query in deterministic
// pre-order: block from list first, then view bodies, then subquery blocks
// in expression order.
func visitFromItems(b *Block, f func(*FromItem)) {
	if b == nil {
		return
	}
	if b.Set != nil {
		for _, c := range b.Set.Children {
			visitFromItems(c, f)
		}
	}
	for _, fi := range b.From {
		f(fi)
		if fi.View != nil {
			visitFromItems(fi.View, f)
		}
	}
	walkBlockExprs(b, func(e Expr) {
		if s, ok := e.(*Subq); ok {
			visitFromItems(s.Block, f)
		}
	})
}

// SQL renders the whole query as SQL text (with pseudo-SQL extensions for
// semijoin/antijoin and lateral views, which have no surface syntax).
func (q *Query) SQL() string {
	return q.Root.SQL(q.DisplayNamer())
}

// CanonicalKey renders block b in canonical form for use as a cost
// annotation cache key (§3.4.2). Names are assigned relative to b's own
// subtree so that structurally identical blocks produce identical keys even
// when sibling parts of the query differ between transformation states.
// Correlated references to items outside the subtree are rendered by the
// outer item's table name and user alias, which survive deep copies.
func (q *Query) CanonicalKey(b *Block) string {
	n := &Namer{names: map[FromID]string{}, ordinals: true}
	i := 0
	visitFromItems(b, func(f *FromItem) {
		n.names[f.ID] = fmt.Sprintf("t%d", i)
		i++
	})
	// Outer items referenced from within b: name by stable attributes.
	outer := map[FromID]*FromItem{}
	visitFromItems(q.Root, func(f *FromItem) {
		outer[f.ID] = f
	})
	refs := map[FromID]bool{}
	collectBlockRefs(b, refs)
	for id := range refs {
		if _, local := n.names[id]; local {
			continue
		}
		f := outer[id]
		if f == nil {
			n.names[id] = fmt.Sprintf("x%d", id)
			continue
		}
		tbl := "view"
		if f.Table != nil {
			tbl = f.Table.Name
		}
		n.names[id] = fmt.Sprintf("x:%s~%s", tbl, f.Alias)
	}
	return b.SQL(n)
}

// SQL renders the block using the given namer.
func (b *Block) SQL(n *Namer) string {
	var sb strings.Builder
	b.writeSQL(&sb, n)
	return sb.String()
}

func (b *Block) writeSQL(sb *strings.Builder, n *Namer) {
	if b.Set != nil {
		for i, c := range b.Set.Children {
			if i > 0 {
				sb.WriteString(" ")
				sb.WriteString(b.Set.Kind.String())
				sb.WriteString(" ")
			}
			sb.WriteString("(")
			c.writeSQL(sb, n)
			sb.WriteString(")")
		}
		b.writeOrderLimit(sb, n)
		return
	}
	sb.WriteString("SELECT ")
	if b.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range b.Select {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(exprSQL(it.Expr, n))
		if it.Alias != "" && !n.ordinals {
			sb.WriteString(" ")
			sb.WriteString(it.Alias)
		}
	}
	sb.WriteString(" FROM ")
	for i, f := range b.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		f.writeSQL(sb, n)
	}
	if len(b.Where) > 0 || b.Limit > 0 {
		sb.WriteString(" WHERE ")
		for i, e := range b.Where {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			sb.WriteString(exprSQL(e, n))
		}
		if b.Limit > 0 {
			if len(b.Where) > 0 {
				sb.WriteString(" AND ")
			}
			fmt.Fprintf(sb, "ROWNUM <= %d", b.Limit)
		}
	}
	if len(b.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		if b.GroupingSets != nil {
			sb.WriteString("GROUPING SETS (")
			for i, set := range b.GroupingSets {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString("(")
				for j, idx := range set {
					if j > 0 {
						sb.WriteString(", ")
					}
					sb.WriteString(exprSQL(b.GroupBy[idx], n))
				}
				sb.WriteString(")")
			}
			sb.WriteString(")")
		} else {
			for i, g := range b.GroupBy {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(exprSQL(g, n))
			}
		}
	}
	if len(b.Having) > 0 {
		sb.WriteString(" HAVING ")
		for i, e := range b.Having {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			sb.WriteString(exprSQL(e, n))
		}
	}
	b.writeOrderLimit(sb, n)
}

func (b *Block) writeOrderLimit(sb *strings.Builder, n *Namer) {
	if len(b.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range b.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(exprSQL(o.Expr, n))
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if b.Set != nil && b.Limit > 0 {
		fmt.Fprintf(sb, " /* ROWNUM <= %d */", b.Limit)
	}
}

func (f *FromItem) writeSQL(sb *strings.Builder, n *Namer) {
	if f.Kind != JoinInner {
		sb.WriteString(f.Kind.String())
		sb.WriteString(" JOIN ")
	}
	if f.Lateral {
		sb.WriteString("LATERAL ")
	}
	if f.Table != nil {
		sb.WriteString(f.Table.Name)
		sb.WriteString(" ")
		sb.WriteString(n.name(f.ID))
	} else {
		sb.WriteString("(")
		f.View.writeSQL(sb, n)
		sb.WriteString(") ")
		sb.WriteString(n.name(f.ID))
	}
	if len(f.Cond) > 0 {
		sb.WriteString(" ON (")
		for i, c := range f.Cond {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			sb.WriteString(exprSQL(c, n))
		}
		sb.WriteString(")")
	}
}

// exprSQL renders an expression with resolved aliases.
func exprSQL(e Expr, n *Namer) string {
	switch v := e.(type) {
	case *Const:
		return v.Val.String()
	case *Param:
		if n.ordinals {
			// Canonical cache keys identify parameters by slot so that
			// structurally identical blocks match regardless of names.
			return fmt.Sprintf(":$%d", v.Ord)
		}
		return ":" + v.Name
	case *Col:
		if v.From == 0 {
			return v.Name // set-operation output reference
		}
		if n.ordinals {
			return fmt.Sprintf("%s.#%d", n.name(v.From), v.Ord)
		}
		return fmt.Sprintf("%s.%s", n.name(v.From), v.Name)
	case *Bin:
		return fmt.Sprintf("(%s %s %s)", exprSQL(v.L, n), v.Op, exprSQL(v.R, n))
	case *Not:
		return fmt.Sprintf("NOT (%s)", exprSQL(v.E, n))
	case *IsNull:
		if v.Neg {
			return exprSQL(v.E, n) + " IS NOT NULL"
		}
		return exprSQL(v.E, n) + " IS NULL"
	case *Like:
		neg := ""
		if v.Neg {
			neg = " NOT"
		}
		return fmt.Sprintf("%s%s LIKE %s", exprSQL(v.E, n), neg, exprSQL(v.Pattern, n))
	case *InList:
		neg := ""
		if v.Neg {
			neg = " NOT"
		}
		parts := make([]string, len(v.Vals))
		for i, x := range v.Vals {
			parts[i] = exprSQL(x, n)
		}
		return fmt.Sprintf("%s%s IN (%s)", exprSQL(v.E, n), neg, strings.Join(parts, ", "))
	case *Func:
		parts := make([]string, len(v.Args))
		for i, x := range v.Args {
			parts[i] = exprSQL(x, n)
		}
		return fmt.Sprintf("%s(%s)", v.Def.Name, strings.Join(parts, ", "))
	case *LNNVL:
		return fmt.Sprintf("LNNVL(%s)", exprSQL(v.E, n))
	case *IsTrue:
		return fmt.Sprintf("(%s) IS TRUE", exprSQL(v.E, n))
	case *Agg:
		if v.Star {
			return "COUNT(*)"
		}
		d := ""
		if v.Distinct {
			d = "DISTINCT "
		}
		return fmt.Sprintf("%s(%s%s)", v.Op, d, exprSQL(v.Arg, n))
	case *WinFunc:
		arg := "*"
		if v.Arg != nil {
			arg = exprSQL(v.Arg, n)
		}
		if v.Op == WinRowNumber {
			arg = ""
		}
		var parts []string
		if len(v.PartitionBy) > 0 {
			ps := make([]string, len(v.PartitionBy))
			for i, x := range v.PartitionBy {
				ps[i] = exprSQL(x, n)
			}
			parts = append(parts, "PARTITION BY "+strings.Join(ps, ", "))
		}
		if len(v.OrderBy) > 0 {
			os := make([]string, len(v.OrderBy))
			for i, o := range v.OrderBy {
				os[i] = exprSQL(o.Expr, n)
				if o.Desc {
					os[i] += " DESC"
				}
			}
			parts = append(parts, "ORDER BY "+strings.Join(os, ", "))
		}
		return fmt.Sprintf("%s(%s) OVER (%s)", v.Op, arg, strings.Join(parts, " "))
	case *Subq:
		inner := v.Block.SQL(n)
		switch v.Kind {
		case SubqExists:
			return fmt.Sprintf("EXISTS (%s)", inner)
		case SubqNotExists:
			return fmt.Sprintf("NOT EXISTS (%s)", inner)
		case SubqScalar:
			return fmt.Sprintf("(%s)", inner)
		case SubqIn, SubqNotIn:
			neg := ""
			if v.Kind == SubqNotIn {
				neg = " NOT"
			}
			return fmt.Sprintf("%s%s IN (%s)", leftSQL(v.Left, n), neg, inner)
		case SubqAnyCmp:
			return fmt.Sprintf("%s %s ANY (%s)", leftSQL(v.Left, n), v.Op, inner)
		case SubqAllCmp:
			return fmt.Sprintf("%s %s ALL (%s)", leftSQL(v.Left, n), v.Op, inner)
		}
	case *Case:
		var sb strings.Builder
		sb.WriteString("CASE")
		for _, w := range v.Whens {
			fmt.Fprintf(&sb, " WHEN %s THEN %s", exprSQL(w.Cond, n), exprSQL(w.Result, n))
		}
		if v.Else != nil {
			fmt.Fprintf(&sb, " ELSE %s", exprSQL(v.Else, n))
		}
		sb.WriteString(" END")
		return sb.String()
	}
	return fmt.Sprintf("<%T>", e)
}

func leftSQL(left []Expr, n *Namer) string {
	if len(left) == 1 {
		return exprSQL(left[0], n)
	}
	parts := make([]string, len(left))
	for i, x := range left {
		parts[i] = exprSQL(x, n)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// SortedFromIDs returns the block's from IDs in ascending order; handy for
// deterministic iteration in tests and transformations.
func (b *Block) SortedFromIDs() []FromID {
	out := make([]FromID, 0, len(b.From))
	for _, f := range b.From {
		out = append(out, f.ID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
