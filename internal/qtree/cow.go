package qtree

import "sync/atomic"

// Copy-on-write query clones (§3.4.3). The CBQT search evaluates one
// transformation state per tree copy; a deep copy per state is the search's
// dominant CPU and memory cost. CloneCOW instead shares the whole block
// tree with the base query and materializes a private copy of a block only
// when a transformation asks to mutate it (Mutable/MutableDeep), so a state
// that rewrites two blocks of a twelve-block query copies two blocks, not
// twelve.
//
// Ownership discipline:
//
//   - A block b is *owned* by query q iff b.query == q. Blocks of a COW
//     clone start out owned by the base; materialized copies and blocks the
//     transformation creates through q.NewBlock are owned by the clone.
//   - The owned region is upward-closed: materialization copies the whole
//     path from the root to the requested block, so a shared block's
//     subtree is entirely shared and is never mutated through the clone.
//   - An owned block's immediate structure is private: its slices, its
//     FromItem structs and its SetOp header belong to the clone. Child
//     *Block pointers may still reference shared blocks, and Expr nodes are
//     shared freely — the transformation layer treats expressions as
//     immutable (rewrites build new spines).
//   - Materialized copies keep the original block ID and allocate nothing
//     from either query's counters, so materialization is invisible to ID
//     allocation: a COW clone that applies a transformation produces the
//     same IDs the same transformation would produce on a private tree.
//
// Transformations never see stale pointers as long as every mutation goes
// through Mutable: materializing block b forwards b to its private copy
// (Resolve follows the forwarding chain), and an un-materialized block is
// by construction un-mutated, so reading through a pre-materialization
// pointer observes exactly the content the current tree holds.
type cowState struct {
	base *Query
	// fwd forwards a base block to the clone's materialized copy of it.
	fwd map[*Block]*Block
}

// Process-wide copy counters, for the clone-accounting regression tests and
// the memo benchmark. Deltas, not absolute values, are meaningful.
var (
	fullCloneCount   atomic.Int64
	cowCloneCount    atomic.Int64
	materializeCount atomic.Int64
)

// CopyCounters reports the process-wide number of deep clones (Query.Clone),
// COW clones (CloneCOW) and block materializations performed so far. Callers
// diff two readings to attribute copies to one optimization.
func CopyCounters() (fullClones, cowClones, materializations int64) {
	return fullCloneCount.Load(), cowCloneCount.Load(), materializeCount.Load()
}

// CloneCOW returns a copy-on-write clone of q: the block tree is shared,
// ID counters continue from q's values, and the first mutation of any block
// (via Mutable) materializes a private copy of the path to it. The clone is
// safe to build and use concurrently with other clones of the same base as
// long as the base itself is not mutated.
func (q *Query) CloneCOW() *Query {
	if q.cow != nil {
		panic("qtree: CloneCOW of a copy-on-write clone")
	}
	cowCloneCount.Add(1)
	return &Query{
		Root:     q.Root,
		Catalog:  q.Catalog,
		Params:   append([]string(nil), q.Params...),
		nextFrom: q.nextFrom,
		nextBlk:  q.nextBlk,
		cow:      &cowState{base: q, fwd: map[*Block]*Block{}},
	}
}

// IsCOW reports whether q is a copy-on-write clone.
func (q *Query) IsCOW() bool { return q.cow != nil }

// COWBase returns the base query of a COW clone, or nil.
func (q *Query) COWBase() *Query {
	if q.cow == nil {
		return nil
	}
	return q.cow.base
}

// CanHold reports whether block b may legally appear in q's tree: b is
// owned by q, or q is a COW clone and b is shared from its base. The static
// checker uses this in place of strict ownership.
func (q *Query) CanHold(b *Block) bool {
	return b.query == q || (q.cow != nil && b.query == q.cow.base)
}

// IDCounters exposes the query's next from-item and block IDs, so the
// aliasing checker can verify that evaluating a state never allocates from
// the shared base.
func (q *Query) IDCounters() (FromID, int) { return q.nextFrom, q.nextBlk }

// Resolve forwards b through any materializations this clone performed: if
// a transformation holds a pre-materialization pointer (from an earlier
// object-discovery pass), Resolve returns the block's current incarnation.
// On a non-COW query, or for a never-materialized block, it returns b.
func (q *Query) Resolve(b *Block) *Block {
	if q.cow == nil || b == nil || b.query == q {
		return b
	}
	for {
		nb, ok := q.cow.fwd[b]
		if !ok {
			return b
		}
		b = nb
	}
}

// Mutable returns a privately-owned incarnation of b that the caller may
// mutate. On a non-COW query it returns b unchanged. On a COW clone it
// materializes (shallow-copies) the path from the root to b, forwarding
// every copied block, and returns b's copy; blocks already owned come back
// as-is. Transformations must route every block mutation through Mutable
// (or MutableDeep) and must re-fetch derived pointers (from items, views,
// subquery blocks) from the returned block.
func (q *Query) Mutable(b *Block) *Block {
	if q.cow == nil || b == nil {
		return b
	}
	b = q.Resolve(b)
	if b.query == q {
		return b
	}
	if b.query != q.cow.base {
		panic("qtree: Mutable on a block owned by a foreign query")
	}
	path, ok := q.findPath(b)
	if !ok {
		panic("qtree: Mutable on a block not reachable from the root")
	}
	var parent *Block
	for _, node := range path {
		if node.query == q {
			parent = node
			continue
		}
		nb := q.materialize(node)
		if parent == nil {
			q.Root = nb
		} else {
			q.relink(parent, node, nb)
		}
		parent = nb
	}
	return parent
}

// MutableDeep is Mutable plus full-subtree privatization: every descendant
// block of b (views, set-operation children, subquery blocks) is
// materialized too. Transformations that rewrite expressions across block
// boundaries (RewriteBlockExprsDeep, view substitution) need the whole
// subtree private.
func (q *Query) MutableDeep(b *Block) *Block {
	if q.cow == nil || b == nil {
		return b
	}
	nb := q.Mutable(b)
	q.privatize(nb)
	return nb
}

// findPath locates the link path from q.Root down to target, returning the
// blocks along it (root first, target last).
func (q *Query) findPath(target *Block) ([]*Block, bool) {
	var path []*Block
	var dfs func(b *Block) bool
	dfs = func(b *Block) bool {
		if b == nil {
			return false
		}
		path = append(path, b)
		if b == target {
			return true
		}
		if b.Set != nil {
			for _, c := range b.Set.Children {
				if dfs(c) {
					return true
				}
			}
		}
		for _, f := range b.From {
			if f.View != nil && dfs(f.View) {
				return true
			}
		}
		found := false
		walkBlockExprs(b, func(e Expr) {
			if found {
				return
			}
			if s, ok := e.(*Subq); ok && dfs(s.Block) {
				found = true
			}
		})
		if found {
			return true
		}
		path = path[:len(path)-1]
		return false
	}
	return path, dfs(q.Root)
}

// materialize shallow-copies a shared block into the clone: private slices,
// private FromItem structs and SetOp header, same block ID, shared Expr
// nodes and child *Block pointers. The copy is registered in the forwarding
// map so stale pointers resolve to it.
func (q *Query) materialize(b *Block) *Block {
	nb := &Block{
		ID:       b.ID,
		Distinct: b.Distinct,
		Limit:    b.Limit,
		Select:   append([]SelectItem(nil), b.Select...),
		Where:    append([]Expr(nil), b.Where...),
		GroupBy:  append([]Expr(nil), b.GroupBy...),
		Having:   append([]Expr(nil), b.Having...),
		OrderBy:  append([]OrderItem(nil), b.OrderBy...),
		query:    q,
	}
	if b.GroupingSets != nil {
		nb.GroupingSets = make([][]int, len(b.GroupingSets))
		for i, s := range b.GroupingSets {
			nb.GroupingSets[i] = append([]int(nil), s...)
		}
	}
	if len(b.From) > 0 {
		nb.From = make([]*FromItem, len(b.From))
		for i, f := range b.From {
			nf := *f
			nf.Cond = append([]Expr(nil), f.Cond...)
			nb.From[i] = &nf
		}
	}
	if b.Set != nil {
		nb.Set = &SetOp{Kind: b.Set.Kind, Children: append([]*Block(nil), b.Set.Children...)}
	}
	q.cow.fwd[b] = nb
	materializeCount.Add(1)
	return nb
}

// relink redirects parent's child link from old to nb. parent must already
// be owned by q. Subquery links live inside shared expression spines, so
// redirecting one rebuilds the spine with a fresh *Subq node and writes it
// into the parent's (private) expression slot.
func (q *Query) relink(parent, old, nb *Block) {
	if parent.Set != nil {
		for i, c := range parent.Set.Children {
			if c == old {
				parent.Set.Children[i] = nb
				return
			}
		}
	}
	for _, f := range parent.From {
		if f.View == old {
			f.View = nb
			return
		}
	}
	replaced := false
	RewriteBlockExprs(parent, func(e Expr) Expr {
		if s, ok := e.(*Subq); ok && s.Block == old {
			ns := *s
			ns.Block = nb
			replaced = true
			return &ns
		}
		return nil
	})
	if !replaced {
		panic("qtree: COW relink found no link from parent to child")
	}
}

// privatize materializes every descendant block of the (owned) block b.
func (q *Query) privatize(b *Block) {
	if b.Set != nil {
		for i, c := range b.Set.Children {
			c = q.Resolve(c)
			if c.query != q {
				c = q.materialize(c)
			}
			b.Set.Children[i] = c
			q.privatize(c)
		}
	}
	for _, f := range b.From {
		if f.View == nil {
			continue
		}
		v := q.Resolve(f.View)
		if v.query != q {
			v = q.materialize(v)
		}
		f.View = v
		q.privatize(v)
	}
	RewriteBlockExprs(b, func(e Expr) Expr {
		s, ok := e.(*Subq)
		if !ok {
			return nil
		}
		blk := q.Resolve(s.Block)
		if blk.query != q {
			blk = q.materialize(blk)
		}
		if blk == s.Block {
			return nil
		}
		ns := *s
		ns.Block = blk
		return &ns
	})
	walkBlockExprs(b, func(e Expr) {
		if s, ok := e.(*Subq); ok {
			q.privatize(s.Block)
		}
	})
}

// AdoptCOW replaces q's tree with that of work, a COW clone of q whose
// mutations should become q's state (the winning transformation was applied
// to work). Blocks still shared transfer back untouched; materialized and
// newly created blocks are reowned by q. work must not be used afterwards.
func (q *Query) AdoptCOW(work *Query) {
	if work.cow == nil || work.cow.base != q {
		panic("qtree: AdoptCOW of a query that is not a COW clone of the receiver")
	}
	q.Root = work.Root
	q.Params = work.Params
	q.nextFrom = work.nextFrom
	q.nextBlk = work.nextBlk
	q.reown(q.Root)
}

// COWStats counts the blocks reachable from q's root by ownership: shared
// blocks still alias the COW base, owned blocks are private to q
// (materialized copies and transformation-created blocks). A non-COW query
// reports every block as owned.
func (q *Query) COWStats() (shared, owned int) {
	var walk func(b *Block)
	walk = func(b *Block) {
		if b == nil {
			return
		}
		if b.query == q {
			owned++
		} else {
			shared++
		}
		if b.Set != nil {
			for _, c := range b.Set.Children {
				walk(c)
			}
		}
		for _, f := range b.From {
			if f.View != nil {
				walk(f.View)
			}
		}
		walkBlockExprs(b, func(e Expr) {
			if s, ok := e.(*Subq); ok {
				walk(s.Block)
			}
		})
	}
	walk(q.Root)
	return shared, owned
}

// OwnedApproxBytes estimates the private tree memory this query paid for
// its state, in the units of ApproxBytes. On a COW clone, shared blocks
// cost nothing and owned blocks cost their structural copy — block shell,
// FromItem structs, and a pointer per expression node — because under the
// COW discipline expression nodes are immutable and shared freely (a
// materialized block keeps the base's nodes; a rewrite builds a new spine
// that both modes allocate identically). The walk stops at shared
// sub-trees: the owned region is upward-closed, so a shared block never
// has owned descendants. For a non-COW query it equals ApproxBytes —
// a deep clone really does duplicate every expression node per state,
// which is exactly the tax this accounting exposes.
func (q *Query) OwnedApproxBytes() int64 {
	if q.cow == nil {
		return q.ApproxBytes()
	}
	var total int64
	var walk func(b *Block)
	walk = func(b *Block) {
		if b == nil || b.query != q {
			return
		}
		total += 256
		for _, f := range b.From {
			total += 128 + int64(len(f.Alias))
		}
		if b.Set != nil {
			for _, c := range b.Set.Children {
				walk(c)
			}
		}
		for _, f := range b.From {
			if f.View != nil {
				walk(f.View)
			}
		}
		walkBlockExprs(b, func(e Expr) {
			total += 8 // slice entry; the node itself is shared
			if s, ok := e.(*Subq); ok {
				walk(s.Block)
			}
		})
	}
	walk(q.Root)
	return total
}
