package optimizer

import (
	"math"

	"repro/internal/qtree"
)

// compileSubq plans the block of a subquery expression and registers the
// SubPlan. Correlated references into the current block's relations (known
// to es) determine the effective number of executions under tuple iteration
// semantics with caching: distinct parameter combinations, capped by the
// number of outer rows.
func (p *Planner) compileSubq(q *qtree.Query, s *qtree.Subq, es *estimator, outerRows float64, plan *Plan) (*SubPlan, error) {
	if sp, ok := plan.Subplans[s]; ok {
		return sp, nil
	}
	outFrom := q.NewFromID()
	node, _, err := p.planBlock(q, s.Block, outFrom, plan)
	if err != nil {
		return nil, err
	}
	sp := &SubPlan{Root: node, PerExec: node.Cost().Total}

	// Distinct correlation bindings: product of NDVs of the outer columns
	// referenced by the subquery that belong to relations in scope.
	distinct := 1.0
	correlated := false
	for id := range s.Block.OuterRefs() {
		if ri, ok := es.rels[id]; ok {
			correlated = true
			// Without knowing which column, assume a key-like domain.
			_ = ri
		}
	}
	// Refine using actual column references.
	refCols := collectOuterCols(s.Block, es)
	for _, c := range refCols {
		sp.Correlated = append(sp.Correlated, ColID{From: c.From, Ord: c.Ord})
		if ci, ok := es.col(c); ok {
			distinct *= math.Max(ci.ndv, 1)
			correlated = true
		}
	}
	if !correlated {
		// Uncorrelated subquery: executed once.
		sp.EffectiveExecs = 1
	} else {
		sp.EffectiveExecs = math.Max(math.Min(distinct, math.Max(outerRows, 1)), 1)
	}
	plan.Subplans[s] = sp
	return sp, nil
}

// collectOuterCols returns the column references inside block b (at any
// depth) that refer to relations known to es (i.e. the current block).
func collectOuterCols(b *qtree.Block, es *estimator) []*qtree.Col {
	var out []*qtree.Col
	seen := map[ColID]bool{}
	var walkBlock func(blk *qtree.Block)
	walkBlock = func(blk *qtree.Block) {
		blk.VisitExprs(func(e qtree.Expr) {
			switch v := e.(type) {
			case *qtree.Col:
				if _, ok := es.rels[v.From]; ok {
					id := ColID{From: v.From, Ord: v.Ord}
					if !seen[id] {
						seen[id] = true
						out = append(out, v)
					}
				}
			case *qtree.Subq:
				walkBlock(v.Block)
			}
		})
		for _, f := range blk.From {
			if f.View != nil {
				walkBlock(f.View)
			}
		}
		if blk.Set != nil {
			for _, c := range blk.Set.Children {
				walkBlock(c)
			}
		}
	}
	walkBlock(b)
	return out
}

// buildSubqFilter builds the Filter node applying predicates that contain
// subqueries (and residual parameter predicates), costing subquery
// execution under TIS with caching.
func (p *Planner) buildSubqFilter(q *qtree.Query, child PlanNode, preds []qtree.Expr, es *estimator, plan *Plan) (PlanNode, error) {
	inRows := child.Cost().Rows
	total := child.Cost().Total
	for _, pred := range preds {
		total += inRows * cpuEvalCost
		total += inRows * expensiveEvalCost(pred)
		var err error
		qtree.WalkExpr(pred, func(x qtree.Expr) bool {
			if err != nil {
				return false
			}
			if s, ok := x.(*qtree.Subq); ok {
				sp, cerr := p.compileSubq(q, s, es, inRows, plan)
				if cerr != nil {
					err = cerr
					return false
				}
				execs := math.Min(sp.EffectiveExecs, math.Max(inRows, 1))
				total += execs*sp.PerExec + inRows*subqCacheProbe
				return false
			}
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	f := &Filter{Child: child, Preds: preds}
	f.cols = child.Columns()
	f.cost = Cost{
		Total: total,
		Rows:  math.Max(inRows*es.selectivityAll(preds), 1e-3),
	}
	if err := p.checkCutoff(f.cost.Total); err != nil {
		return nil, err
	}
	return f, nil
}

// compileExprSubplans compiles subplans for subqueries appearing in a
// non-filter expression (select list, order by) and returns the extra
// execution cost.
func (p *Planner) compileExprSubplans(q *qtree.Query, e qtree.Expr, es *estimator, plan *Plan) error {
	var err error
	qtree.WalkExpr(e, func(x qtree.Expr) bool {
		if err != nil {
			return false
		}
		if s, ok := x.(*qtree.Subq); ok {
			_, err = p.compileSubq(q, s, es, 1, plan)
			return false
		}
		return true
	})
	return err
}
