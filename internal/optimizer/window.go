package optimizer

import (
	"math"

	"repro/internal/qtree"
)

// buildWindow plans the analytic-function step: it collects the distinct
// window functions from the select list, builds the Window node, and
// rewrites the select expressions to reference the window outputs.
func (p *Planner) buildWindow(q *qtree.Query, child PlanNode, selExprs []qtree.Expr) (PlanNode, []qtree.Expr) {
	var funcs []*qtree.WinFunc
	var keys []string
	collect := func(e qtree.Expr) {
		qtree.WalkExpr(e, func(x qtree.Expr) bool {
			if w, ok := x.(*qtree.WinFunc); ok {
				k := w.String()
				for _, seen := range keys {
					if seen == k {
						return false
					}
				}
				keys = append(keys, k)
				funcs = append(funcs, w)
				return false
			}
			if _, ok := x.(*qtree.Subq); ok {
				return false
			}
			return true
		})
	}
	for _, e := range selExprs {
		collect(e)
	}

	win := &Window{Child: child, Funcs: funcs, OutFrom: q.NewFromID()}
	win.cols = append(append([]ColID(nil), child.Columns()...), outputCols(win.OutFrom, len(funcs))...)
	rows := child.Cost().Rows
	n := math.Max(rows, 2)
	// Per function: partition (hash) + sort within partitions (for ordered
	// windows) + one accumulation per row.
	cost := child.Cost().Total
	for _, f := range funcs {
		cost += rows * hashBuildCost
		if len(f.OrderBy) > 0 {
			cost += sortFactor * n * math.Log2(n)
		}
		cost += rows * aggFnCost
	}
	win.cost = Cost{Total: cost, Rows: rows}

	out := make([]qtree.Expr, len(selExprs))
	for i, e := range selExprs {
		out[i] = rewriteWindowRefs(e, win)
	}
	return win, out
}

// rewriteWindowRefs replaces window function references with the Window
// node's output columns.
func rewriteWindowRefs(e qtree.Expr, win *Window) qtree.Expr {
	return qtree.RewriteExpr(e, func(x qtree.Expr) qtree.Expr {
		if w, ok := x.(*qtree.WinFunc); ok {
			k := w.String()
			for j, f := range win.Funcs {
				if f.String() == k {
					return &qtree.Col{From: win.OutFrom, Ord: j, Name: "WIN"}
				}
			}
		}
		return nil
	})
}
