package optimizer

import (
	"math"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/qtree"
)

// localOnlyRefs returns the refs of e that belong to the current block.
func (jb *joinBuilder) localRefs(e qtree.Expr) map[qtree.FromID]bool {
	out := map[qtree.FromID]bool{}
	for id := range exprRefs(e) {
		if _, ok := jb.idToIdx[id]; ok {
			out[id] = true
		}
	}
	return out
}

// standaloneAccess picks the cheapest access path for a from item given its
// single-item predicates (which may reference correlation parameters):
// sequential scan versus the best index equality/range scan.
func (jb *joinBuilder) standaloneAccess(f *qtree.FromItem, preds []qtree.Expr, viewNode PlanNode) PlanNode {
	es := jb.es
	if f.View != nil {
		node := viewNode
		if len(preds) > 0 {
			flt := &Filter{Child: node, Preds: preds}
			flt.cols = node.Columns()
			flt.cost = Cost{
				Total: node.Cost().Total + node.Cost().Rows*predsEvalCost(preds),
				Rows:  math.Max(node.Cost().Rows*es.selectivityAll(preds), 1e-3),
			}
			node = flt
		}
		return node
	}

	t := f.Table
	baseRows := 1000.0
	if st := t.Stats(); st != nil {
		baseRows = math.Max(float64(st.RowCount), 1)
	}
	sel := es.selectivityAll(preds)

	// Sequential scan.
	seq := &SeqScan{Table: t, From: f.ID, Filter: preds}
	seq.cols = tableCols(f)
	seq.cost = Cost{
		Total: baseRows*cpuTupleCost + baseRows*predsEvalCost(preds),
		Rows:  math.Max(baseRows*sel, 1e-3),
	}
	var best PlanNode = seq

	// Index scans.
	for _, idx := range t.Indexes {
		node := jb.tryIndexAccess(f, idx, preds, baseRows)
		if node != nil && node.Cost().Total < best.Cost().Total {
			best = node
		}
	}
	return best
}

func tableCols(f *qtree.FromItem) []ColID {
	n := f.Table.NumCols() + 1 // + rowid
	cols := make([]ColID, n)
	for i := range cols {
		cols[i] = ColID{From: f.ID, Ord: i}
	}
	return cols
}

// tryIndexAccess builds an index scan for the item if some predicates match
// the index's leading columns; returns nil when the index is unusable.
func (jb *joinBuilder) tryIndexAccess(f *qtree.FromItem, idx *catalog.Index, preds []qtree.Expr, baseRows float64) PlanNode {
	var eqKeys []qtree.Expr
	used := map[int]bool{}
	// Match an equality prefix of the index columns.
	for _, col := range idx.Cols {
		found := -1
		var key qtree.Expr
		for pi, pr := range preds {
			if used[pi] {
				continue
			}
			c, k, ok := eqColKey(pr, f.ID, col, jb)
			if ok && c != nil {
				found, key = pi, k
				break
			}
		}
		if found < 0 {
			break
		}
		used[found] = true
		eqKeys = append(eqKeys, key)
	}

	var lo, hi qtree.Expr
	var loInc, hiInc bool
	if len(eqKeys) == 0 {
		// Try a range scan on the first index column. Only one bound per
		// direction can drive the scan; any further range predicates stay
		// as residual filters (dropping them would widen the result), and
		// among constant bounds the tightest is chosen.
		col := idx.Cols[0]
		loAt, hiAt := -1, -1
		for pi, pr := range preds {
			if used[pi] {
				continue
			}
			b, ok := pr.(*qtree.Bin)
			if !ok || !b.Op.IsComparison() {
				continue
			}
			side, bound, op := rangeOn(b, f.ID, col, jb)
			if side == 0 {
				continue
			}
			switch op {
			case qtree.OpGt, qtree.OpGe:
				if lo == nil || tighterConst(bound, lo, true) {
					if loAt >= 0 {
						used[loAt] = false // demote the previous bound to residual
					}
					lo, loInc, loAt = bound, op == qtree.OpGe, pi
					used[pi] = true
				}
			case qtree.OpLt, qtree.OpLe:
				if hi == nil || tighterConst(bound, hi, false) {
					if hiAt >= 0 {
						used[hiAt] = false
					}
					hi, hiInc, hiAt = bound, op == qtree.OpLe, pi
					used[pi] = true
				}
			}
		}
		if lo == nil && hi == nil {
			return nil
		}
	}

	var residual []qtree.Expr
	for pi, pr := range preds {
		if !used[pi] {
			residual = append(residual, pr)
		}
	}
	matchSel := 1.0
	if len(eqKeys) > 0 {
		for i := 0; i < len(eqKeys); i++ {
			ci, _ := jb.es.col(&qtree.Col{From: f.ID, Ord: idx.Cols[i]})
			matchSel *= clampSel(1 / math.Max(ci.ndv, 1))
		}
	} else {
		// Range selectivity.
		matchSel = 1.0 / 3.0
		if lo != nil && hi != nil {
			matchSel = 0.15
		}
		if cb, ok := boundConst(lo); ok {
			ci, _ := jb.es.col(&qtree.Col{From: f.ID, Ord: idx.Cols[0]})
			matchSel = jb.es.colVsValue(ci, qtree.OpGe, cb)
		}
		if cb, ok := boundConst(hi); ok {
			ci, _ := jb.es.col(&qtree.Col{From: f.ID, Ord: idx.Cols[0]})
			s := jb.es.colVsValue(ci, qtree.OpLe, cb)
			if lo != nil {
				matchSel = clampSel(matchSel + s - 1)
			} else {
				matchSel = s
			}
		}
	}
	matchRows := math.Max(baseRows*matchSel, 1e-3)
	outRows := math.Max(matchRows*jb.es.selectivityAll(residual), 1e-3)

	n := &IndexScan{
		Table: f.Table, From: f.ID, Index: idx,
		EqKeys: eqKeys, Lo: lo, Hi: hi, LoInc: loInc, HiInc: hiInc,
		Filter: residual,
	}
	n.cols = tableCols(f)
	n.cost = Cost{
		Total: indexProbeCost + matchRows*indexRowCost + matchRows*predsEvalCost(residual),
		Rows:  outRows,
	}
	return n
}

// tighterConst reports whether candidate is a provably tighter bound than
// current: a larger constant for lower bounds, smaller for upper bounds.
// Non-constant candidates never replace an existing bound.
func tighterConst(candidate, current qtree.Expr, lower bool) bool {
	cc, ok1 := candidate.(*qtree.Const)
	cu, ok2 := current.(*qtree.Const)
	if !ok1 || !ok2 {
		return false
	}
	cmp, err := datum.Compare(cc.Val, cu.Val)
	if err != nil {
		return false
	}
	if lower {
		return cmp > 0
	}
	return cmp < 0
}

// boundConst extracts the constant value of a bound expression if it is a
// literal.
func boundConst(e qtree.Expr) (*datum.Datum, bool) {
	if c, ok := e.(*qtree.Const); ok {
		return &c.Val, true
	}
	return nil, false
}

// eqColKey matches pred as "col = key" where col is column ord of from id
// and key has no local references (constant or correlation parameter).
// It returns the column and key expression.
func eqColKey(pred qtree.Expr, id qtree.FromID, ord int, jb *joinBuilder) (*qtree.Col, qtree.Expr, bool) {
	b, ok := pred.(*qtree.Bin)
	if !ok || b.Op != qtree.OpEq {
		return nil, nil, false
	}
	if c, ok := b.L.(*qtree.Col); ok && c.From == id && c.Ord == ord {
		if len(jb.localRefs(b.R)) == 0 {
			return c, b.R, true
		}
	}
	if c, ok := b.R.(*qtree.Col); ok && c.From == id && c.Ord == ord {
		if len(jb.localRefs(b.L)) == 0 {
			return c, b.L, true
		}
	}
	return nil, nil, false
}

// rangeOn matches pred as a range bound on (id, ord): returns the bound
// expression and the operator with the column on the left.
func rangeOn(b *qtree.Bin, id qtree.FromID, ord int, jb *joinBuilder) (side int, bound qtree.Expr, op qtree.BinOp) {
	if c, ok := b.L.(*qtree.Col); ok && c.From == id && c.Ord == ord && len(jb.localRefs(b.R)) == 0 {
		return 1, b.R, b.Op
	}
	if c, ok := b.R.(*qtree.Col); ok && c.From == id && c.Ord == ord && len(jb.localRefs(b.L)) == 0 {
		return 2, b.L, b.Op.Commute()
	}
	return 0, nil, 0
}
