package optimizer

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/obsv"
	"repro/internal/qtree"
)

// stressQueries are multi-block queries whose subquery and view blocks
// populate the annotation cache; several share blocks so concurrent
// optimizers both hit and miss the same keys.
var stressQueries = []string{
	`SELECT e.employee_name FROM employees e
	 WHERE EXISTS (SELECT 1 FROM departments d, locations l
	               WHERE d.loc_id = l.loc_id AND d.dept_id = e.dept_id AND l.country_id = 'US')
	   AND EXISTS (SELECT 1 FROM job_history j, jobs jb
	               WHERE j.job_id = jb.job_id AND j.emp_id = e.emp_id AND j.start_date > '19980101')`,
	`SELECT e.employee_name FROM employees e
	 WHERE e.salary > (SELECT AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e.dept_id)
	   AND EXISTS (SELECT 1 FROM departments d, locations l
	               WHERE d.loc_id = l.loc_id AND d.dept_id = e.dept_id AND l.country_id = 'US')`,
	`SELECT d.department_name FROM departments d
	 WHERE NOT EXISTS (SELECT 1 FROM job_history j, jobs jb
	                   WHERE j.job_id = jb.job_id AND j.dept_id = d.dept_id AND j.start_date > '20000101')`,
}

// TestCostCacheConcurrentStress drives one shared CostCache from many
// goroutines, each cost-only-optimizing clones of the same queries. Run
// under -race this validates the sharded locking; the counter checks
// validate that every block plan is accounted exactly once as either a
// cache hit or an optimization, and that hits never change the cost.
func TestCostCacheConcurrentStress(t *testing.T) {
	db := testDB(t)

	// Reference work and cost per query, measured without a cache.
	type ref struct {
		q      *qtree.Query
		blocks int
		cost   float64
	}
	refs := make([]ref, len(stressQueries))
	for i, src := range stressQueries {
		q, err := qtree.BindSQL(src, db.Catalog)
		if err != nil {
			t.Fatal(err)
		}
		p := New(db.Catalog)
		p.CostOnly = true
		plan, err := p.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref{q: q, blocks: p.Counters.BlocksOptimized, cost: plan.Cost.Total}
	}

	cache := NewCostCache()
	const goroutines = 16
	const iters = 10

	var wg sync.WaitGroup
	errs := make(chan string, goroutines*iters)
	var mu sync.Mutex
	totalHits, totalBlocks := 0, 0
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				r := refs[(g+it)%len(refs)]
				clone, _ := r.q.Clone()
				p := New(db.Catalog)
				p.CostOnly = true
				p.Cache = cache
				plan, err := p.Optimize(clone)
				if err != nil {
					errs <- err.Error()
					return
				}
				if plan.Cost.Total != r.cost {
					errs <- "cached cost diverged from uncached cost"
					return
				}
				// Every planned select block is exactly one hit or one
				// optimization; a hit on an outer block skips its nested
				// blocks entirely, so the sum never exceeds the uncached
				// block count and never reaches zero.
				got := p.Counters.CacheHits + p.Counters.BlocksOptimized
				if got < 1 || got > r.blocks {
					errs <- "hit/miss counters inconsistent"
					return
				}
				mu.Lock()
				totalHits += p.Counters.CacheHits
				totalBlocks += p.Counters.BlocksOptimized
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	if totalHits == 0 {
		t.Error("no cache hits across concurrent optimizers; sharing is broken")
	}
	if cache.Len() == 0 {
		t.Error("cache stayed empty")
	}
	// The cache can never hold more annotations than blocks were optimized
	// (duplicated concurrent misses overwrite the same key).
	if cache.Len() > totalBlocks {
		t.Errorf("cache holds %d annotations but only %d blocks were optimized", cache.Len(), totalBlocks)
	}
}

// TestCostCacheEviction drives a tiny bounded cache far past its capacity
// and checks that the clock eviction keeps the entry count at the bound,
// accounts every eviction in the metrics registry, and keeps the byte gauge
// consistent.
func TestCostCacheEviction(t *testing.T) {
	const maxEntries = 32 // one entry per shard
	reg := obsv.NewRegistry()
	c := NewCostCacheIn(reg, maxEntries)
	const puts = 400
	for i := 0; i < puts; i++ {
		c.put(fmt.Sprintf("select * from t%d", i), costAnnotation{cost: Cost{Total: float64(i)}})
	}
	if got := c.Len(); got > maxEntries {
		t.Errorf("cache holds %d entries, bound is %d", got, maxEntries)
	}
	evictions := reg.CounterValue(MetricCacheEvictions)
	if evictions == 0 {
		t.Error("no evictions after overfilling a bounded cache")
	}
	if int(evictions)+c.Len() != puts {
		t.Errorf("evictions (%d) + resident (%d) != puts (%d)", evictions, c.Len(), puts)
	}
	if bytes := reg.Snapshot().Gauges[MetricCacheBytes]; bytes <= 0 || bytes != c.ApproxBytes() {
		t.Errorf("byte gauge %d, ApproxBytes %d", bytes, c.ApproxBytes())
	}

	// A resident key must hit; an evicted or unknown key must miss.
	hitsBefore := reg.CounterValue(MetricCacheHits)
	missesBefore := reg.CounterValue(MetricCacheMisses)
	if _, ok := c.get(fmt.Sprintf("select * from t%d", puts-1)); !ok {
		t.Error("most recently stored key was evicted")
	}
	if _, ok := c.get("select * from nowhere"); ok {
		t.Error("unknown key reported as hit")
	}
	if h, m := reg.CounterValue(MetricCacheHits), reg.CounterValue(MetricCacheMisses); h != hitsBefore+1 || m != missesBefore+1 {
		t.Errorf("counters after 1 hit + 1 miss: hits %d->%d, misses %d->%d",
			hitsBefore, h, missesBefore, m)
	}
}

// TestCostCacheSecondChance: a referenced entry survives one eviction
// sweep; the unreferenced one on the same shard is the victim.
func TestCostCacheSecondChance(t *testing.T) {
	c := NewCostCacheLimited(0) // default bound; direct shard manipulation below
	s := &c.shards[0]
	s.limit = 2
	// Install two entries directly on shard 0 so the test is independent of
	// the hash function.
	put := func(key string, ref bool) {
		s.entries[key] = &cacheEntry{ann: costAnnotation{}, ref: ref}
		s.ring = append(s.ring, key)
	}
	put("keep", true)
	put("victim", false)
	s.mu.Lock()
	// Inline the clock sweep the way put runs it.
	for {
		k := s.ring[s.hand]
		e := s.entries[k]
		if e.ref {
			e.ref = false
			s.hand = (s.hand + 1) % len(s.ring)
			continue
		}
		delete(s.entries, k)
		s.ring[s.hand] = "new"
		s.entries["new"] = &cacheEntry{ann: costAnnotation{}, ref: true}
		break
	}
	s.mu.Unlock()
	if _, ok := s.entries["keep"]; !ok {
		t.Error("referenced entry was evicted before the unreferenced one")
	}
	if _, ok := s.entries["victim"]; ok {
		t.Error("unreferenced entry survived the sweep")
	}
}

// TestCostCacheShardDistribution sanity-checks that distinct keys land on
// more than one shard, so the per-shard mutexes actually spread contention.
func TestCostCacheShardDistribution(t *testing.T) {
	c := NewCostCache()
	shards := map[*cacheShard]bool{}
	keys := []string{"a", "b", "select x from t0", "select x from t1", "q2", "q3", "q4", "q5"}
	for _, k := range keys {
		shards[c.shard(k)] = true
	}
	if len(shards) < 2 {
		t.Errorf("all %d keys hashed to one shard", len(keys))
	}
}
