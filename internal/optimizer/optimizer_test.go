package optimizer

import (
	"strings"
	"testing"

	"repro/internal/qtree"
	"repro/internal/storage"
	"repro/internal/testkit"
)

func testDB(t *testing.T) *storage.DB {
	t.Helper()
	return testkit.NewDB(testkit.SmallSizes(), 7)
}

func optimize(t *testing.T, db *storage.DB, src string) *Plan {
	t.Helper()
	q, err := qtree.BindSQL(src, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	p := New(db.Catalog)
	plan, err := p.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestSimpleScanPlan(t *testing.T) {
	db := testDB(t)
	plan := optimize(t, db, `SELECT e.emp_id FROM employees e WHERE e.salary > 5000`)
	if plan.Cost.Rows <= 0 || plan.Cost.Total <= 0 {
		t.Errorf("cost = %+v", plan.Cost)
	}
	var scans int
	Walk(plan.Root, func(n PlanNode) {
		if _, ok := n.(*SeqScan); ok {
			scans++
		}
	})
	if scans != 1 {
		t.Errorf("seq scans = %d, want 1", scans)
	}
}

func TestIndexScanChosenForPointLookup(t *testing.T) {
	db := testDB(t)
	plan := optimize(t, db, `SELECT e.employee_name FROM employees e WHERE e.emp_id = 17`)
	var idx *IndexScan
	Walk(plan.Root, func(n PlanNode) {
		if v, ok := n.(*IndexScan); ok {
			idx = v
		}
	})
	if idx == nil {
		t.Fatalf("point lookup should use an index:\n%s", Explain(plan))
	}
	if idx.Index.Name != "EMP_PK" {
		t.Errorf("index = %s, want EMP_PK", idx.Index.Name)
	}
}

func TestRangeIndexScan(t *testing.T) {
	db := testDB(t)
	plan := optimize(t, db, `SELECT j.emp_id FROM job_history j WHERE j.start_date > '20030101'`)
	var idx *IndexScan
	Walk(plan.Root, func(n PlanNode) {
		if v, ok := n.(*IndexScan); ok {
			idx = v
		}
	})
	if idx == nil {
		t.Fatalf("selective range predicate should use JH_START:\n%s", Explain(plan))
	}
}

func TestJoinPlanUsesAllTables(t *testing.T) {
	db := testDB(t)
	plan := optimize(t, db, `
SELECT e.employee_name, d.department_name, l.city
FROM employees e, departments d, locations l
WHERE e.dept_id = d.dept_id AND d.loc_id = l.loc_id AND e.salary > 9000`)
	tables := map[string]bool{}
	joins := 0
	Walk(plan.Root, func(n PlanNode) {
		switch v := n.(type) {
		case *SeqScan:
			tables[v.Table.Name] = true
		case *IndexScan:
			tables[v.Table.Name] = true
		case *Join:
			joins++
		}
	})
	if len(tables) != 3 || joins != 2 {
		t.Errorf("tables=%v joins=%d\n%s", tables, joins, Explain(plan))
	}
}

func TestOuterJoinOrderConstraint(t *testing.T) {
	db := testDB(t)
	plan := optimize(t, db, `
SELECT e.employee_name, d.department_name
FROM employees e LEFT OUTER JOIN departments d ON e.dept_id = d.dept_id`)
	// The outer join must have employees on the left.
	var outer *Join
	Walk(plan.Root, func(n PlanNode) {
		if v, ok := n.(*Join); ok && v.Kind == qtree.JoinLeftOuter {
			outer = v
		}
	})
	if outer == nil {
		t.Fatalf("no outer join in plan:\n%s", Explain(plan))
	}
	leftHasEmp := false
	Walk(outer.L, func(n PlanNode) {
		if s, ok := n.(*SeqScan); ok && s.Table.Name == "EMPLOYEES" {
			leftHasEmp = true
		}
		if s, ok := n.(*IndexScan); ok && s.Table.Name == "EMPLOYEES" {
			leftHasEmp = true
		}
	})
	if !leftHasEmp {
		t.Errorf("employees must precede the outer-joined departments:\n%s", Explain(plan))
	}
}

func TestSubqueryPlanCompiled(t *testing.T) {
	db := testDB(t)
	q, err := qtree.BindSQL(`
SELECT e.emp_id FROM employees e
WHERE e.salary > (SELECT AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e.dept_id)`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	p := New(db.Catalog)
	plan, err := p.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Subplans) != 1 {
		t.Fatalf("subplans = %d, want 1", len(plan.Subplans))
	}
	for _, sp := range plan.Subplans {
		if sp.EffectiveExecs <= 0 || sp.PerExec <= 0 {
			t.Errorf("subplan costing: %+v", sp)
		}
		if len(sp.Correlated) == 0 {
			t.Error("correlated columns should be recorded")
		}
		// The correlated equality should make the subquery use the
		// EMP_DEPT index.
		usesIndex := false
		Walk(sp.Root, func(n PlanNode) {
			if ix, ok := n.(*IndexScan); ok && ix.Index.Name == "EMP_DEPT" {
				usesIndex = true
			}
		})
		if !usesIndex {
			t.Errorf("TIS should probe EMP_DEPT index:\n%s", Explain(plan))
		}
	}
}

func TestGroupByPlan(t *testing.T) {
	db := testDB(t)
	plan := optimize(t, db, `
SELECT e.dept_id, AVG(e.salary) avg_sal, COUNT(*) cnt
FROM employees e GROUP BY e.dept_id HAVING COUNT(*) > 2 ORDER BY avg_sal DESC`)
	var agg *Agg
	var srt *Sort
	Walk(plan.Root, func(n PlanNode) {
		if v, ok := n.(*Agg); ok {
			agg = v
		}
		if v, ok := n.(*Sort); ok {
			srt = v
		}
	})
	if agg == nil || len(agg.Aggs) != 2 {
		t.Fatalf("agg missing or wrong specs:\n%s", Explain(plan))
	}
	if srt == nil {
		t.Fatalf("order by requires sort:\n%s", Explain(plan))
	}
}

func TestGroupingSetsPlan(t *testing.T) {
	db := testDB(t)
	plan := optimize(t, db, `
SELECT s.country_id, s.state_id, SUM(s.amount) FROM sales s
GROUP BY ROLLUP(s.country_id, s.state_id)`)
	var agg *Agg
	Walk(plan.Root, func(n PlanNode) {
		if v, ok := n.(*Agg); ok {
			agg = v
		}
	})
	if agg == nil || len(agg.GroupingSets) != 3 {
		t.Fatalf("grouping sets plan:\n%s", Explain(plan))
	}
}

func TestSetOpPlan(t *testing.T) {
	db := testDB(t)
	plan := optimize(t, db, `
SELECT e.emp_id FROM employees e MINUS SELECT j.emp_id FROM job_history j`)
	var set *SetNode
	Walk(plan.Root, func(n PlanNode) {
		if v, ok := n.(*SetNode); ok {
			set = v
		}
	})
	if set == nil || set.Kind != qtree.SetMinus || len(set.Inputs) != 2 {
		t.Fatalf("set plan:\n%s", Explain(plan))
	}
}

func TestLimitScalesStreamingCost(t *testing.T) {
	db := testDB(t)
	full := optimize(t, db, `SELECT e.emp_id FROM employees e`)
	limited := optimize(t, db, `SELECT e.emp_id FROM employees e WHERE rownum <= 5`)
	if limited.Cost.Total >= full.Cost.Total {
		t.Errorf("limit should reduce streaming cost: %v vs %v", limited.Cost, full.Cost)
	}
	if limited.Cost.Rows != 5 {
		t.Errorf("limited rows = %v", limited.Cost.Rows)
	}
}

func TestCostCutoff(t *testing.T) {
	db := testDB(t)
	q, err := qtree.BindSQL(`
SELECT e.emp_id FROM employees e, job_history j, sales s
WHERE e.emp_id = j.emp_id AND s.emp_id = e.emp_id`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	p := New(db.Catalog)
	p.Cutoff = 0.5 // absurdly small budget
	if _, err := p.Optimize(q); err != ErrCutoff {
		t.Errorf("err = %v, want ErrCutoff", err)
	}
}

func TestCostCache(t *testing.T) {
	db := testDB(t)
	q, err := qtree.BindSQL(`SELECT e.emp_id FROM employees e WHERE e.salary > 100`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCostCache()
	p := New(db.Catalog)
	p.Cache = cache
	p.CostOnly = true
	if _, err := p.Optimize(q); err != nil {
		t.Fatal(err)
	}
	if p.Counters.BlocksOptimized != 1 || p.Counters.CacheHits != 0 {
		t.Fatalf("first pass counters: %+v", p.Counters)
	}
	// A structurally identical copy hits the cache.
	q2, _ := q.Clone()
	if _, err := p.Optimize(q2); err != nil {
		t.Fatal(err)
	}
	if p.Counters.CacheHits != 1 {
		t.Errorf("second pass should hit cache: %+v", p.Counters)
	}
	if p.Counters.BlocksOptimized != 1 {
		t.Errorf("cached block should not re-optimize: %+v", p.Counters)
	}
}

func TestSemijoinConstraintAndCaching(t *testing.T) {
	db := testDB(t)
	// Build a semijoin manually (as the unnesting transformation would).
	q, err := qtree.BindSQL(`
SELECT d.department_name FROM departments d, employees e
WHERE d.dept_id = e.dept_id AND e.salary > 2000`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	// Turn employees into a semijoined item.
	b := q.Root
	emp := b.From[1]
	emp.Kind = qtree.JoinSemi
	emp.Cond = []qtree.Expr{b.Where[0]}
	b.Where = b.Where[1:]
	p := New(db.Catalog)
	plan, err := p.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	var semi *Join
	Walk(plan.Root, func(n PlanNode) {
		if v, ok := n.(*Join); ok && v.Kind == qtree.JoinSemi {
			semi = v
		}
	})
	if semi == nil {
		t.Fatalf("no semijoin in plan:\n%s", Explain(plan))
	}
	// departments must be on the left.
	deptLeft := false
	Walk(semi.L, func(n PlanNode) {
		if s, ok := n.(*SeqScan); ok && s.Table.Name == "DEPARTMENTS" {
			deptLeft = true
		}
		if s, ok := n.(*IndexScan); ok && s.Table.Name == "DEPARTMENTS" {
			deptLeft = true
		}
	})
	if !deptLeft {
		t.Errorf("semijoin partial order violated:\n%s", Explain(plan))
	}
}

func TestViewPlan(t *testing.T) {
	db := testDB(t)
	plan := optimize(t, db, `
SELECT v.dept_id, v.avg_sal
FROM (SELECT e.dept_id, AVG(e.salary) avg_sal FROM employees e GROUP BY e.dept_id) v
WHERE v.avg_sal > 5000`)
	var agg *Agg
	Walk(plan.Root, func(n PlanNode) {
		if v, ok := n.(*Agg); ok {
			agg = v
		}
	})
	if agg == nil {
		t.Fatalf("view aggregation missing:\n%s", Explain(plan))
	}
}

func TestExplainOutput(t *testing.T) {
	db := testDB(t)
	plan := optimize(t, db, `
SELECT e.emp_id FROM employees e WHERE e.dept_id IN
(SELECT d.dept_id FROM departments d WHERE d.budget > 500000)`)
	out := Explain(plan)
	for _, want := range []string{"cost=", "rows=", "SubPlan"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestDistinctReducesRows(t *testing.T) {
	db := testDB(t)
	plain := optimize(t, db, `SELECT e.dept_id FROM employees e`)
	distinct := optimize(t, db, `SELECT DISTINCT e.dept_id FROM employees e`)
	if distinct.Cost.Rows >= plain.Cost.Rows {
		t.Errorf("distinct rows %v should be < plain rows %v", distinct.Cost.Rows, plain.Cost.Rows)
	}
}

func TestOrderByNotInSelectDistinctFails(t *testing.T) {
	db := testDB(t)
	q, err := qtree.BindSQL(`SELECT DISTINCT e.dept_id FROM employees e ORDER BY e.salary`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	p := New(db.Catalog)
	if _, err := p.Optimize(q); err == nil {
		t.Error("ORDER BY outside SELECT DISTINCT should fail")
	}
}

func TestLateralViewForcesNL(t *testing.T) {
	db := testDB(t)
	q, err := qtree.BindSQL(`
SELECT e.emp_id, v.cnt
FROM employees e, (SELECT COUNT(*) cnt FROM job_history j) v`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	// Make the view lateral: correlate it on e.emp_id as JPPD would.
	b := q.Root
	view := b.From[1]
	emp := b.From[0]
	view.Lateral = true
	vb := view.View
	vb.Where = append(vb.Where, &qtree.Bin{
		Op: qtree.OpEq,
		L:  &qtree.Col{From: vb.From[0].ID, Ord: 0, Name: "EMP_ID"},
		R:  &qtree.Col{From: emp.ID, Ord: 0, Name: "EMP_ID"},
	})
	p := New(db.Catalog)
	plan, err := p.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	var nl *Join
	Walk(plan.Root, func(n PlanNode) {
		if v, ok := n.(*Join); ok {
			nl = v
		}
	})
	if nl == nil || nl.Method != MethodNL || !nl.RLateral {
		t.Fatalf("lateral view must use NL with lateral right:\n%s", Explain(plan))
	}
}

func TestMultipleRangeBoundsNotDropped(t *testing.T) {
	// Regression: two BETWEEN predicates on the same indexed column used
	// to both be consumed by the range scan with only the last one
	// applied, silently widening the result. The scan must take the
	// tightest constant bound per direction and keep the rest as
	// residual filters.
	db := testDB(t)
	plan := optimize(t, db, `
SELECT e.emp_id FROM employees e
WHERE e.emp_id BETWEEN 141 AND 185 AND e.emp_id BETWEEN 126 AND 161`)
	var scan *IndexScan
	Walk(plan.Root, func(n PlanNode) {
		if v, ok := n.(*IndexScan); ok {
			scan = v
		}
	})
	if scan == nil {
		t.Fatalf("expected an index range scan:\n%s", Explain(plan))
	}
	// The chosen bounds must be the tight pair (141, 161); the two weaker
	// bounds survive as residual filters.
	if lo, ok := scan.Lo.(*qtree.Const); !ok || lo.Val.Int() != 141 {
		t.Errorf("lo bound = %v, want 141", scan.Lo)
	}
	if hi, ok := scan.Hi.(*qtree.Const); !ok || hi.Val.Int() != 161 {
		t.Errorf("hi bound = %v, want 161", scan.Hi)
	}
	if len(scan.Filter) != 2 {
		t.Errorf("residual filters = %d, want 2 (the weaker bounds)\n%s",
			len(scan.Filter), Explain(plan))
	}
	// Cardinality sanity: 21 qualifying rows.
	if plan.Cost.Rows < 5 || plan.Cost.Rows > 80 {
		t.Errorf("row estimate = %v, want ~21", plan.Cost.Rows)
	}
}
