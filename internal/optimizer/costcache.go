package optimizer

import "sync"

// cacheShardCount is the number of independently locked shards of the
// annotation cache. A power of two so the hash maps to a shard with a mask.
// 32 shards keep lock contention negligible for any realistic worker count
// (the CBQT driver bounds workers by GOMAXPROCS).
const cacheShardCount = 32

// CostCache is the cost-annotation store shared across transformation
// states: canonical block rendering → cost annotation. Annotations are
// reused only in cost-only mode, because plan nodes are tied to a specific
// query copy's from IDs.
//
// The cache is safe for concurrent use: the CBQT driver evaluates
// transformation states on a bounded worker pool, and every worker's
// planner consults the same cache. The key space is sharded by key hash
// with one mutex per shard. Concurrent misses on the same key may both
// optimize the block and both store the annotation; both store the same
// value (annotations are a deterministic function of the canonical key), so
// the duplication costs work, never correctness.
type CostCache struct {
	shards [cacheShardCount]cacheShard
}

type cacheShard struct {
	mu      sync.RWMutex
	entries map[string]costAnnotation
}

type costAnnotation struct {
	cost Cost
	ndvs []float64
}

// NewCostCache creates an empty annotation cache.
func NewCostCache() *CostCache {
	c := &CostCache{}
	for i := range c.shards {
		c.shards[i].entries = map[string]costAnnotation{}
	}
	return c
}

// shard selects the shard for a key (FNV-1a over the key bytes).
func (c *CostCache) shard(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h&(cacheShardCount-1)]
}

func (c *CostCache) get(key string) (costAnnotation, bool) {
	s := c.shard(key)
	s.mu.RLock()
	ann, ok := s.entries[key]
	s.mu.RUnlock()
	return ann, ok
}

func (c *CostCache) put(key string, ann costAnnotation) {
	s := c.shard(key)
	s.mu.Lock()
	s.entries[key] = ann
	s.mu.Unlock()
}

// Len reports the number of cached annotations.
func (c *CostCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.entries)
		s.mu.RUnlock()
	}
	return n
}
