package optimizer

import (
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/obsv"
)

// cacheShardCount is the number of independently locked shards of the
// annotation cache. A power of two so the hash maps to a shard with a mask.
// 32 shards keep lock contention negligible for any realistic worker count
// (the CBQT driver bounds workers by GOMAXPROCS).
const cacheShardCount = 32

// DefaultCacheMaxEntries is the entry bound of NewCostCache: generous enough
// that a single query's state-space search never evicts (Table 2's heaviest
// search touches a few hundred distinct blocks), small enough that a
// long-lived session reusing one cache cannot grow it without limit.
const DefaultCacheMaxEntries = 1 << 16

// CostCache is the cost-annotation store shared across transformation
// states: canonical block rendering → cost annotation. Annotations are
// reused only in cost-only mode, because plan nodes are tied to a specific
// query copy's from IDs.
//
// The cache is safe for concurrent use: the CBQT driver evaluates
// transformation states on a bounded worker pool, and every worker's
// planner consults the same cache. The key space is sharded by key hash
// with one mutex per shard. Concurrent misses on the same key may both
// optimize the block and both store the annotation; both store the same
// value (annotations are a deterministic function of the canonical key), so
// the duplication costs work, never correctness.
//
// Each shard is bounded by an entry cap and evicts with the second-chance
// clock algorithm: entries carry a reference bit set on every hit, and the
// clock hand sweeps the shard's ring clearing bits until it finds an unset
// one — O(1) amortized, no per-hit list surgery, and an annotation hit in
// the current search keeps the entry resident.
type CostCache struct {
	shards [cacheShardCount]cacheShard

	// Work counters live in an obsv.Registry (the cache's own, or one shared
	// with the whole optimization via NewCostCacheIn) under the Metric*
	// names; reg is their single source of truth. bytes stays a private
	// atomic because ApproxBytes sits on the CBQT memory-budget hot path.
	reg       *obsv.Registry
	hits      *obsv.Counter
	misses    *obsv.Counter
	evictions *obsv.Counter
	bytesG    *obsv.Gauge
	bytes     atomic.Int64

	// Faults, when non-nil, fires the "cache:get" / "cache:put" injection
	// sites on every lookup and store. An injected error degrades the
	// operation (a lookup misses, a store is dropped) — the cache is an
	// accelerator, so faults cost work, never correctness.
	Faults *faultinject.Set
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	ring    []string // clock ring of resident keys
	hand    int
	limit   int // max entries; 0 = unbounded
}

type cacheEntry struct {
	ann costAnnotation
	ref bool
}

type costAnnotation struct {
	cost Cost
	ndvs []float64
}

// entryBytes approximates the resident size of one cache entry.
func entryBytes(key string, ann costAnnotation) int64 {
	return int64(len(key)) + int64(16*len(ann.ndvs)) + 96
}

// The cache's metric names in its obsv.Registry.
const (
	MetricCacheHits      = "costcache.hits"
	MetricCacheMisses    = "costcache.misses"
	MetricCacheEvictions = "costcache.evictions"
	MetricCacheBytes     = "costcache.bytes"
)

// NewCostCache creates an annotation cache bounded at DefaultCacheMaxEntries.
func NewCostCache() *CostCache {
	return NewCostCacheLimited(DefaultCacheMaxEntries)
}

// NewCostCacheLimited creates an annotation cache holding at most maxEntries
// annotations (split evenly across shards). maxEntries <= 0 selects
// DefaultCacheMaxEntries.
func NewCostCacheLimited(maxEntries int) *CostCache {
	return NewCostCacheIn(nil, maxEntries)
}

// NewCostCacheIn is NewCostCacheLimited with the cache's work counters
// registered in reg under the Metric* names; nil reg gives the cache a
// private registry. Callers sharing reg across caches or queries should
// snapshot the counters and diff (obsv.Snapshot.Sub) to attribute work.
func NewCostCacheIn(reg *obsv.Registry, maxEntries int) *CostCache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheMaxEntries
	}
	if reg == nil {
		reg = obsv.NewRegistry()
	}
	perShard := (maxEntries + cacheShardCount - 1) / cacheShardCount
	if perShard < 1 {
		perShard = 1
	}
	c := &CostCache{
		reg:       reg,
		hits:      reg.Counter(MetricCacheHits),
		misses:    reg.Counter(MetricCacheMisses),
		evictions: reg.Counter(MetricCacheEvictions),
		bytesG:    reg.Gauge(MetricCacheBytes),
	}
	for i := range c.shards {
		c.shards[i].entries = map[string]*cacheEntry{}
		c.shards[i].limit = perShard
	}
	return c
}

// Metrics returns the registry holding the cache's work counters.
func (c *CostCache) Metrics() *obsv.Registry { return c.reg }

// shard selects the shard for a key (FNV-1a over the key bytes).
func (c *CostCache) shard(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h&(cacheShardCount-1)]
}

func (c *CostCache) get(key string) (costAnnotation, bool) {
	if err := c.Faults.Fire("cache:get"); err != nil {
		// Injected lookup failure: degrade to a miss.
		c.misses.Add(1)
		return costAnnotation{}, false
	}
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	var ann costAnnotation
	if ok {
		e.ref = true
		ann = e.ann
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return ann, ok
}

func (c *CostCache) put(key string, ann costAnnotation) {
	if err := c.Faults.Fire("cache:put"); err != nil {
		return // injected store failure: drop the annotation
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() { c.bytesG.Set(c.bytes.Load()) }()
	if e, ok := s.entries[key]; ok {
		c.bytes.Add(entryBytes(key, ann) - entryBytes(key, e.ann))
		e.ann = ann
		e.ref = true
		return
	}
	if s.limit > 0 && len(s.entries) >= s.limit {
		// Clock sweep: give referenced entries a second chance, evict the
		// first unreferenced one and reuse its ring slot.
		for {
			victimKey := s.ring[s.hand]
			victim := s.entries[victimKey]
			if victim.ref {
				victim.ref = false
				s.hand = (s.hand + 1) % len(s.ring)
				continue
			}
			delete(s.entries, victimKey)
			c.evictions.Add(1)
			c.bytes.Add(-entryBytes(victimKey, victim.ann))
			s.ring[s.hand] = key
			s.hand = (s.hand + 1) % len(s.ring)
			break
		}
	} else {
		s.ring = append(s.ring, key)
	}
	s.entries[key] = &cacheEntry{ann: ann, ref: true}
	c.bytes.Add(entryBytes(key, ann))
}

// Len reports the number of cached annotations.
func (c *CostCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// ApproxBytes reports the approximate resident size of the cache, for the
// CBQT memory budget.
func (c *CostCache) ApproxBytes() int64 { return c.bytes.Load() }
