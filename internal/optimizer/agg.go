package optimizer

import (
	"math"

	"repro/internal/qtree"
)

// buildAgg plans the aggregation step of a grouped block: it collects the
// distinct aggregate functions from the select list / HAVING / ORDER BY,
// builds the Agg node, and rewrites those expressions to reference the
// aggregate output columns.
func (p *Planner) buildAgg(
	q *qtree.Query,
	b *qtree.Block,
	child PlanNode,
	es *estimator,
	selExprs, havingPreds, orderExprs []qtree.Expr,
) (PlanNode, []qtree.Expr, []qtree.Expr, []qtree.Expr, error) {
	// Collect distinct aggregates across all consuming clauses.
	var specs []AggSpec
	var specKeys []string
	collect := func(e qtree.Expr) {
		qtree.WalkExpr(e, func(x qtree.Expr) bool {
			if _, ok := x.(*qtree.Subq); ok {
				return false
			}
			if a, ok := x.(*qtree.Agg); ok {
				key := a.String()
				for _, k := range specKeys {
					if k == key {
						return false
					}
				}
				specKeys = append(specKeys, key)
				specs = append(specs, AggSpec{Op: a.Op, Arg: a.Arg, Star: a.Star, Distinct: a.Distinct})
				return false
			}
			return true
		})
	}
	for _, e := range selExprs {
		collect(e)
	}
	for _, e := range havingPreds {
		collect(e)
	}
	for _, e := range orderExprs {
		collect(e)
	}

	outFrom := q.NewFromID()
	agg := &Agg{
		Child:        child,
		GroupBy:      b.GroupBy,
		GroupingSets: b.GroupingSets,
		Aggs:         specs,
		OutFrom:      outFrom,
	}
	nGB := len(b.GroupBy)
	agg.cols = outputCols(outFrom, nGB+len(specs))

	// Cardinality: product of grouping-column NDVs capped by input rows.
	inRows := child.Cost().Rows
	groups := 1.0
	for _, g := range b.GroupBy {
		groups *= math.Max(es.ndv(g), 1)
		if groups > inRows {
			groups = math.Max(inRows, 1)
			break
		}
	}
	if nGB == 0 {
		groups = 1
	}
	sets := 1.0
	if b.GroupingSets != nil {
		sets = float64(len(b.GroupingSets))
		// Each set produces at most its own group count; approximate with
		// a diminishing series.
		groups = math.Min(groups*1.5, inRows*sets)
	}
	total := child.Cost().Total + inRows*sets*(aggRowCost+float64(len(specs))*aggFnCost)
	agg.cost = Cost{Total: total, Rows: math.Max(groups, 1)}

	// Register the aggregate output in the estimator.
	ndvs := make([]float64, nGB+len(specs))
	for i, g := range b.GroupBy {
		ndvs[i] = math.Min(es.ndv(g), agg.cost.Rows)
	}
	for j := range specs {
		ndvs[nGB+j] = agg.cost.Rows
	}
	es.addDerived(outFrom, agg.cost.Rows, ndvs)

	// Rewrite consumers to reference the aggregate output.
	gbKeys := make([]string, nGB)
	for i, g := range b.GroupBy {
		gbKeys[i] = g.String()
	}
	rewrite := func(e qtree.Expr) qtree.Expr {
		return qtree.RewriteExpr(e, func(x qtree.Expr) qtree.Expr {
			if a, ok := x.(*qtree.Agg); ok {
				key := a.String()
				for j, k := range specKeys {
					if k == key {
						return &qtree.Col{From: outFrom, Ord: nGB + j, Name: "AGG"}
					}
				}
			}
			if _, ok := x.(*qtree.Subq); ok {
				return x // leave subqueries intact
			}
			key := x.String()
			for i, k := range gbKeys {
				if k == key {
					return &qtree.Col{From: outFrom, Ord: i, Name: "GRP"}
				}
			}
			return nil
		})
	}
	outSel := make([]qtree.Expr, len(selExprs))
	for i, e := range selExprs {
		outSel[i] = rewrite(e)
	}
	outHaving := make([]qtree.Expr, len(havingPreds))
	for i, e := range havingPreds {
		outHaving[i] = rewrite(e)
	}
	outOrder := make([]qtree.Expr, len(orderExprs))
	for i, e := range orderExprs {
		outOrder[i] = rewrite(e)
	}
	return agg, outSel, outHaving, outOrder, nil
}
