// Package optimizer implements the physical optimizer: cardinality and
// selectivity estimation from catalog statistics, access path selection
// (full scan, index equality and range scans), System-R style dynamic
// programming join enumeration with partial-order constraints for
// semijoin/antijoin/outer-join/lateral views, join method selection
// (nested loops, hash, sort-merge, each with semi/anti/outer variants), and
// costing of aggregation, sorting, distinct, set operations and correlated
// subquery evaluation under tuple iteration semantics with caching.
//
// This is the "cost estimation technique (physical optimizer)" component of
// the paper's cost-based transformation framework (§3.1): the CBQT driver
// deep-copies the query tree, applies a transformation state, and invokes
// this optimizer to obtain the state's cost.
package optimizer

import (
	"repro/internal/catalog"
	"repro/internal/qtree"
)

// ColID identifies one column in a plan node's output: the from item that
// produced it and the output ordinal within that item.
type ColID struct {
	From qtree.FromID
	Ord  int
}

// Cost is the optimizer's estimate for a (sub)plan: total cost in abstract
// units and output row count.
type Cost struct {
	Total float64
	Rows  float64
}

// PlanNode is one operator of a physical plan.
type PlanNode interface {
	// Columns is the node's output schema.
	Columns() []ColID
	// Cost returns the node's cumulative cost estimate.
	Cost() Cost
	// Children returns input operators (empty for leaves).
	Children() []PlanNode
	// Label is a short operator name for EXPLAIN output.
	Label() string
}

// base carries the fields shared by all plan nodes.
type base struct {
	cols []ColID
	cost Cost
}

func (b *base) Columns() []ColID { return b.cols }
func (b *base) Cost() Cost       { return b.cost }

// SeqScan reads all rows of a base table, applying Filter.
type SeqScan struct {
	base
	Table  *catalog.Table
	From   qtree.FromID
	Filter []qtree.Expr
}

func (n *SeqScan) Children() []PlanNode { return nil }
func (n *SeqScan) Label() string        { return "SeqScan " + n.Table.Name }

// IndexScan probes an index of a base table. EqKeys are expressions for the
// leading index columns (they may reference columns of earlier join inputs
// or correlation parameters); Lo/Hi optionally bound the first index column
// for a range scan. Filter applies to fetched rows.
type IndexScan struct {
	base
	Table *catalog.Table
	From  qtree.FromID
	Index *catalog.Index

	EqKeys []qtree.Expr // equality probes on leading index columns
	Lo, Hi qtree.Expr   // range bounds on the column after the EqKeys prefix
	LoInc  bool
	HiInc  bool

	Filter []qtree.Expr
}

func (n *IndexScan) Children() []PlanNode { return nil }
func (n *IndexScan) Label() string {
	return "IndexScan " + n.Table.Name + "." + n.Index.Name
}

// Filter applies predicates to child rows. Predicates may contain subquery
// expressions, evaluated via the plan's Subplans map under tuple iteration
// semantics with result caching (§2.1.1).
type Filter struct {
	base
	Child PlanNode
	Preds []qtree.Expr
}

func (n *Filter) Children() []PlanNode { return []PlanNode{n.Child} }
func (n *Filter) Label() string        { return "Filter" }

// JoinMethod enumerates physical join algorithms.
type JoinMethod uint8

// Join methods.
const (
	MethodNL JoinMethod = iota
	MethodHash
	MethodMerge
)

var joinMethodNames = [...]string{MethodNL: "NestedLoops", MethodHash: "Hash", MethodMerge: "Merge"}

func (m JoinMethod) String() string { return joinMethodNames[m] }

// Join combines two inputs. Kind follows qtree join kinds (inner, semi,
// anti, null-aware anti, left outer). For MethodNL the right child is
// re-evaluated per left row and may be an IndexScan probing left columns or
// a lateral view subplan; for hash/merge, EqL/EqR are the equi-key
// expressions over the left/right columns.
type Join struct {
	base
	Method JoinMethod
	Kind   qtree.JoinKind
	L, R   PlanNode

	EqL, EqR []qtree.Expr // hash/merge keys (len equal)
	// NullSafeEq marks per-key null-safe equality (nulls match), produced
	// by the set-operator-into-join transformation.
	NullSafeEq []bool
	// On holds residual join conditions evaluated against the combined row.
	On []qtree.Expr
	// RLateral marks that the right side references left columns (index NL
	// probe or lateral view / correlated rescan).
	RLateral bool
}

// NullSafe reports whether hash/merge key i uses null-safe equality.
func (n *Join) NullSafe(i int) bool {
	return i < len(n.NullSafeEq) && n.NullSafeEq[i]
}

func (n *Join) Children() []PlanNode { return []PlanNode{n.L, n.R} }
func (n *Join) Label() string        { return n.Method.String() + " " + n.Kind.String() + " Join" }

// AggSpec describes one aggregate computed by an Agg node.
type AggSpec struct {
	Op       qtree.AggOp
	Arg      qtree.Expr // nil for COUNT(*)
	Star     bool
	Distinct bool
}

// Agg groups child rows by GroupBy expressions and computes Aggs. Output
// columns are the grouping expressions followed by the aggregates, exposed
// under the synthetic OutFrom id. With GroupingSets, the aggregation is
// repeated per set with the non-member grouping columns null (ROLLUP /
// GROUPING SETS execution); a trailing grouping-set id column is appended.
type Agg struct {
	base
	Child        PlanNode
	GroupBy      []qtree.Expr
	GroupingSets [][]int
	Aggs         []AggSpec
	OutFrom      qtree.FromID
}

func (n *Agg) Children() []PlanNode { return []PlanNode{n.Child} }
func (n *Agg) Label() string {
	if len(n.GroupBy) == 0 {
		return "Aggregate (scalar)"
	}
	if n.GroupingSets != nil {
		return "Aggregate (grouping sets)"
	}
	return "Aggregate (hash)"
}

// Window computes analytic functions: the child's rows are partitioned by
// each function's PARTITION BY, optionally ordered within the partition,
// and the function value is attached to every row. Output columns are the
// child's columns followed by one column per function under OutFrom.
type Window struct {
	base
	Child   PlanNode
	Funcs   []*qtree.WinFunc
	OutFrom qtree.FromID
}

func (n *Window) Children() []PlanNode { return []PlanNode{n.Child} }
func (n *Window) Label() string        { return "Window" }

// Project computes the output expressions of a block and renames them to
// Out column identities (the from-item id under which the parent block
// sees this view, or from id 0 for the statement result).
type Project struct {
	base
	Child PlanNode
	Exprs []qtree.Expr
}

func (n *Project) Children() []PlanNode { return []PlanNode{n.Child} }
func (n *Project) Label() string        { return "Project" }

// Distinct removes duplicate rows (grouping equality: nulls match).
type Distinct struct {
	base
	Child PlanNode
}

func (n *Distinct) Children() []PlanNode { return []PlanNode{n.Child} }
func (n *Distinct) Label() string        { return "Distinct (hash)" }

// Sort orders child rows.
type Sort struct {
	base
	Child PlanNode
	Keys  []qtree.Expr
	Desc  []bool
}

func (n *Sort) Children() []PlanNode { return []PlanNode{n.Child} }
func (n *Sort) Label() string        { return "Sort" }

// Limit returns the first N child rows (Oracle ROWNUM semantics).
type Limit struct {
	base
	Child PlanNode
	N     int64
}

func (n *Limit) Children() []PlanNode { return []PlanNode{n.Child} }
func (n *Limit) Label() string        { return "Limit" }

// SetNode evaluates a set operation over children (all with equal arity).
type SetNode struct {
	base
	Kind    qtree.SetOpKind
	Inputs  []PlanNode
	OutFrom qtree.FromID
}

func (n *SetNode) Children() []PlanNode { return n.Inputs }
func (n *SetNode) Label() string        { return n.Kind.String() }

// SubPlan is the compiled form of a subquery appearing inside an
// expression: its plan, the correlation parameters it reads from the outer
// row, and its per-execution cost. The executor caches results keyed by the
// correlation values, matching the optimizer's effective-execution model.
type SubPlan struct {
	Root PlanNode
	// Correlated lists the outer columns the subquery reads.
	Correlated []ColID
	// PerExec is the estimated cost of one execution.
	PerExec float64
	// EffectiveExecs estimates distinct parameter bindings (cache misses).
	EffectiveExecs float64
}

// Plan is a complete physical plan for a query: the root operator plus the
// subplans for every subquery expression left in the tree.
type Plan struct {
	Root     PlanNode
	Subplans map[*qtree.Subq]*SubPlan
	// BlocksOptimized counts query blocks costed while producing this plan,
	// including cache-avoided ones; see Planner counters for the breakdown.
	Cost Cost
}

// Walk visits the plan tree in pre-order.
func Walk(n PlanNode, f func(PlanNode)) {
	if n == nil {
		return
	}
	f(n)
	for _, c := range n.Children() {
		Walk(c, f)
	}
}
