package optimizer

import (
	"math"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/qtree"
)

// Cost model constants (abstract units, roughly "per-tuple CPU touches").
const (
	cpuTupleCost    = 1.0  // producing one row from a scan
	cpuEvalCost     = 0.05 // evaluating one simple predicate on one row
	indexProbeCost  = 8.0  // descending a B-tree
	indexRowCost    = 1.5  // fetching one row through an index
	hashBuildCost   = 1.4  // inserting one row into a hash table
	hashProbeCost   = 1.0  // probing once
	mergeRowCost    = 0.6  // advancing merge join by one row
	sortFactor      = 0.35 // n·log2(n) multiplier
	aggRowCost      = 1.5  // grouping one row
	aggFnCost       = 0.3  // one aggregate accumulation
	distinctRowCost = 1.2
	projectRowCost  = 0.1
	rescanRowCost   = 0.2 // re-reading one materialized row
	defaultSel      = 0.1
	subqCacheProbe  = 0.3 // TIS cache lookup per outer row
)

// colInfo is what the estimator knows about one column of a from item.
type colInfo struct {
	ndv      float64
	nullFrac float64
	min, max datum.Datum
	hist     []catalog.HistBucket
	rows     float64
}

// relInfo is what the estimator knows about a from item (base table stats,
// or derived estimates for a view).
type relInfo struct {
	rows float64
	cols map[int]colInfo
}

// estimator resolves column statistics across the from items in scope.
type estimator struct {
	rels map[qtree.FromID]*relInfo
}

func newEstimator() *estimator {
	return &estimator{rels: map[qtree.FromID]*relInfo{}}
}

// addTable registers base-table statistics for a from item.
func (es *estimator) addTable(id qtree.FromID, t *catalog.Table) {
	ri := &relInfo{rows: 1000, cols: map[int]colInfo{}}
	if st := t.Stats(); st != nil {
		ri.rows = float64(st.RowCount)
		if ri.rows < 1 {
			ri.rows = 1
		}
		for i := range t.Cols {
			cs := st.Col(i)
			ci := colInfo{
				ndv:  math.Max(float64(cs.NDV), 1),
				min:  cs.Min,
				max:  cs.Max,
				hist: cs.Hist,
				rows: ri.rows,
			}
			if st.RowCount > 0 {
				ci.nullFrac = float64(cs.NullCount) / float64(st.RowCount)
			}
			ri.cols[i] = ci
		}
	}
	// rowid is unique.
	ri.cols[t.RowidOrdinal()] = colInfo{ndv: ri.rows, rows: ri.rows}
	es.rels[id] = ri
}

// addDerived registers estimates for a view's output columns.
func (es *estimator) addDerived(id qtree.FromID, rows float64, ndvs []float64) {
	ri := &relInfo{rows: math.Max(rows, 1), cols: map[int]colInfo{}}
	for i, n := range ndvs {
		ri.cols[i] = colInfo{ndv: math.Max(n, 1), rows: ri.rows}
	}
	es.rels[id] = ri
}

// col returns what is known about a column; ok is false for parameters
// (correlated references to relations not in scope).
func (es *estimator) col(c *qtree.Col) (colInfo, bool) {
	ri, ok := es.rels[c.From]
	if !ok {
		return colInfo{}, false
	}
	ci, ok := ri.cols[c.Ord]
	if !ok {
		return colInfo{ndv: math.Max(ri.rows/10, 1), rows: ri.rows}, true
	}
	return ci, true
}

// ndv returns the distinct count estimate for an arbitrary expression.
func (es *estimator) ndv(e qtree.Expr) float64 {
	switch v := e.(type) {
	case *qtree.Col:
		if ci, ok := es.col(v); ok {
			return ci.ndv
		}
		return 25 // unknown parameter domain
	case *qtree.Const:
		return 1
	}
	return 25
}

// selectivity estimates the fraction of rows satisfying predicate e.
// Column references to relations not registered in the estimator are
// treated as parameters (constants of unknown value).
func (es *estimator) selectivity(e qtree.Expr) float64 {
	switch v := e.(type) {
	case *qtree.Const:
		if v.Val.Kind() == datum.KBool {
			if v.Val.Bool() {
				return 1
			}
			return 0
		}
		return defaultSel

	case *qtree.Bin:
		return es.binSelectivity(v)

	case *qtree.Not:
		return clampSel(1 - es.selectivity(v.E))

	case *qtree.IsNull:
		if c, ok := v.E.(*qtree.Col); ok {
			if ci, ok := es.col(c); ok {
				if v.Neg {
					return clampSel(1 - ci.nullFrac)
				}
				return clampSel(ci.nullFrac)
			}
		}
		if v.Neg {
			return 0.95
		}
		return 0.05

	case *qtree.InList:
		var s float64
		for range v.Vals {
			s += es.eqSelectivity(v.E)
		}
		s = clampSel(s)
		if v.Neg {
			s = clampSel(1 - s)
		}
		return s

	case *qtree.Like:
		if v.Neg {
			return 0.9
		}
		return 0.05

	case *qtree.LNNVL:
		return clampSel(1 - es.selectivity(v.E))

	case *qtree.IsTrue:
		return es.selectivity(v.E)

	case *qtree.Func:
		return 0.25

	case *qtree.Subq:
		switch v.Kind {
		case qtree.SubqExists, qtree.SubqIn:
			return 0.5
		case qtree.SubqNotExists, qtree.SubqNotIn:
			return 0.5
		case qtree.SubqAnyCmp:
			return 0.4
		case qtree.SubqAllCmp:
			return 0.2
		}
		return defaultSel
	}
	return defaultSel
}

func (es *estimator) binSelectivity(b *qtree.Bin) float64 {
	switch b.Op {
	case qtree.OpAnd:
		return clampSel(es.selectivity(b.L) * es.selectivity(b.R))
	case qtree.OpOr:
		l, r := es.selectivity(b.L), es.selectivity(b.R)
		return clampSel(l + r - l*r)
	}
	if !b.Op.IsComparison() {
		return defaultSel
	}
	l, lIsCol := b.L.(*qtree.Col)
	r, rIsCol := b.R.(*qtree.Col)
	// Scalar subquery comparisons behave like comparisons with an unknown
	// constant.
	if _, ok := b.R.(*qtree.Subq); ok {
		return cmpDefaultSel(b.Op)
	}
	switch {
	case lIsCol && rIsCol:
		li, lOK := es.col(l)
		ri, rOK := es.col(r)
		switch {
		case lOK && rOK:
			// Join predicate used as a filter.
			if b.Op == qtree.OpEq || b.Op == qtree.OpNullSafeEq {
				return clampSel(1 / math.Max(li.ndv, ri.ndv))
			}
			return cmpDefaultSel(b.Op)
		case lOK:
			return es.colVsValue(li, b.Op, nil)
		case rOK:
			return es.colVsValue(ri, b.Op.Commute(), nil)
		default:
			return cmpDefaultSel(b.Op)
		}
	case lIsCol:
		if ci, ok := es.col(l); ok {
			if c, isConst := b.R.(*qtree.Const); isConst {
				return es.colVsValue(ci, b.Op, &c.Val)
			}
			return es.colVsValue(ci, b.Op, nil)
		}
		return cmpDefaultSel(b.Op)
	case rIsCol:
		if ci, ok := es.col(r); ok {
			if c, isConst := b.L.(*qtree.Const); isConst {
				return es.colVsValue(ci, b.Op.Commute(), &c.Val)
			}
			return es.colVsValue(ci, b.Op.Commute(), nil)
		}
		return cmpDefaultSel(b.Op)
	}
	return cmpDefaultSel(b.Op)
}

// eqSelectivity is the selectivity of "e = <one value>".
func (es *estimator) eqSelectivity(e qtree.Expr) float64 {
	if c, ok := e.(*qtree.Col); ok {
		if ci, ok := es.col(c); ok {
			return clampSel(1 / ci.ndv)
		}
	}
	return 0.05
}

// colVsValue estimates "col <op> value"; val may be nil (unknown constant /
// parameter).
func (es *estimator) colVsValue(ci colInfo, op qtree.BinOp, val *datum.Datum) float64 {
	switch op {
	case qtree.OpEq, qtree.OpNullSafeEq:
		if val != nil && len(ci.hist) > 0 {
			// Equi-height histogram: locate the value's bucket.
			var total, inBucket float64
			for _, bk := range ci.hist {
				total += float64(bk.Count)
			}
			for _, bk := range ci.hist {
				if cmp, err := datum.Compare(*val, bk.UpperBound); err == nil && cmp <= 0 {
					inBucket = float64(bk.Count)
					break
				}
			}
			if total > 0 && inBucket > 0 {
				// Assume the bucket holds ndv/buckets distinct values.
				perVal := inBucket / math.Max(ci.ndv/float64(len(ci.hist)), 1)
				return clampSel(perVal / ci.rows)
			}
		}
		return clampSel(1 / ci.ndv)
	case qtree.OpNe:
		return clampSel(1 - 1/ci.ndv)
	case qtree.OpLt, qtree.OpLe, qtree.OpGt, qtree.OpGe:
		if val != nil && len(ci.hist) > 0 {
			return clampSel(es.histRangeFrac(ci, op, *val))
		}
		if val != nil && !ci.min.IsNull() && !ci.max.IsNull() {
			if f, ok := interpolate(ci.min, ci.max, *val); ok {
				if op == qtree.OpLt || op == qtree.OpLe {
					return clampSel(f)
				}
				return clampSel(1 - f)
			}
		}
		return cmpDefaultSel(op)
	}
	return cmpDefaultSel(op)
}

// histRangeFrac computes the fraction of rows below/above val using the
// equi-height histogram, interpolating linearly within the boundary bucket
// so that narrow ranges (lo and hi in the same bucket) still produce a
// sensible estimate.
func (es *estimator) histRangeFrac(ci colInfo, op qtree.BinOp, val datum.Datum) float64 {
	var total, below float64
	for _, bk := range ci.hist {
		total += float64(bk.Count)
	}
	if total == 0 {
		return cmpDefaultSel(op)
	}
	prev := ci.min
	for _, bk := range ci.hist {
		cmp, err := datum.Compare(bk.UpperBound, val)
		if err != nil {
			return cmpDefaultSel(op)
		}
		if cmp <= 0 {
			below += float64(bk.Count)
			prev = bk.UpperBound
			continue
		}
		// val falls inside this bucket: interpolate within it.
		inBucket := 0.5
		if !prev.IsNull() {
			if f, ok := interpolate(prev, bk.UpperBound, val); ok {
				inBucket = f
			}
		}
		below += float64(bk.Count) * inBucket
		break
	}
	frac := below / total
	if op == qtree.OpLt || op == qtree.OpLe {
		return frac
	}
	return 1 - frac
}

// interpolate positions val within [min, max] for numeric or string ranges.
func interpolate(min, max, val datum.Datum) (float64, bool) {
	if min.Kind() == datum.KString {
		if max.Kind() != datum.KString || val.Kind() != datum.KString {
			return 0, false
		}
		// All-digit strings (dates like '19980101') interpolate numerically,
		// which is far more accurate than byte-prefix ranking across a
		// leading-digit boundary.
		if a, ok1 := digitsVal(min.Str()); ok1 {
			if b, ok2 := digitsVal(max.Str()); ok2 {
				if v, ok3 := digitsVal(val.Str()); ok3 && b > a {
					return clamp01(float64(v-a) / float64(b-a)), true
				}
			}
		}
		lo, hi, v := prefixRank(min.Str()), prefixRank(max.Str()), prefixRank(val.Str())
		if hi <= lo {
			return 0.5, true
		}
		return clamp01((v - lo) / (hi - lo)), true
	}
	// Numeric.
	switch val.Kind() {
	case datum.KInt, datum.KFloat:
	default:
		return 0, false
	}
	lo, hi, v := min.Float(), max.Float(), val.Float()
	if hi <= lo {
		return 0.5, true
	}
	return clamp01((v - lo) / (hi - lo)), true
}

// digitsVal parses a short all-digit string as an integer.
func digitsVal(s string) (int64, bool) {
	if s == "" || len(s) > 18 {
		return 0, false
	}
	var v int64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	return v, true
}

// prefixRank maps a string's first bytes to a comparable float.
func prefixRank(s string) float64 {
	var r float64
	mult := 1.0
	for i := 0; i < 8; i++ {
		var b byte
		if i < len(s) {
			b = s[i]
		}
		mult /= 256
		r += float64(b) * mult
	}
	return r
}

func cmpDefaultSel(op qtree.BinOp) float64 {
	switch op {
	case qtree.OpEq, qtree.OpNullSafeEq:
		return 0.05
	case qtree.OpNe:
		return 0.9
	default:
		return 1.0 / 3.0
	}
}

func clampSel(s float64) float64 {
	if s < 1e-6 {
		return 1e-6
	}
	if s > 1 {
		return 1
	}
	return s
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// selectivityAll multiplies the selectivities of conjuncts.
func (es *estimator) selectivityAll(preds []qtree.Expr) float64 {
	s := 1.0
	for _, p := range preds {
		s *= es.selectivity(p)
	}
	return clampSel(s)
}
