package optimizer

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/qtree"
)

// dpLimit is the largest from-list size enumerated with exhaustive dynamic
// programming; larger blocks fall back to greedy construction.
const dpLimit = 12

// joinInput is one relation participating in join enumeration.
type joinInput struct {
	idx  int
	item *qtree.FromItem
	// preds are the single-item predicates (possibly with correlation
	// parameters) used by access-path selection.
	preds []qtree.Expr
	// self is the best standalone access path.
	self PlanNode
	// cond is the effective non-inner join condition: the item's Cond
	// minus single-item conjuncts, which are pushed into the access path
	// (filtering the right side of a semi/anti/outer join first is always
	// equivalent).
	cond []qtree.Expr
	// prereq is the bitmask of inputs that must be joined before this one
	// (non-inner join condition references; lateral view references).
	prereq uint64
	// mustFollow forbids this input from starting the join order
	// (semijoin/antijoin/outer-join right sides and lateral views).
	mustFollow bool
	// lateral marks a lateral (JPPD) view re-executed per outer row.
	lateral bool
	// viewNode is the planned view body for view inputs.
	viewNode PlanNode
}

// joinBuilder runs join enumeration for one block.
type joinBuilder struct {
	p         *Planner
	q         *qtree.Query
	b         *qtree.Block
	es        *estimator
	inputs    []*joinInput
	joinPreds []qtree.Expr
	predMask  []uint64 // local refs of each join pred as an input bitmask
	idToIdx   map[qtree.FromID]int
	plan      *Plan
}

// dpEntry is the best plan found for a subset of inputs.
type dpEntry struct {
	node PlanNode
	mask uint64
}

func (p *Planner) newJoinBuilder(q *qtree.Query, b *qtree.Block, itemPreds map[qtree.FromID][]qtree.Expr, joinPreds []qtree.Expr, plan *Plan) (*joinBuilder, error) {
	jb := &joinBuilder{
		p: p, q: q, b: b,
		es:        newEstimator(),
		joinPreds: joinPreds,
		idToIdx:   map[qtree.FromID]int{},
		plan:      plan,
	}
	for i, f := range b.From {
		jb.idToIdx[f.ID] = i
	}
	local := b.LocalFromIDs()

	// Register relations and plan views.
	viewNodes := map[qtree.FromID]PlanNode{}
	for _, f := range b.From {
		if f.Table != nil {
			jb.es.addTable(f.ID, f.Table)
			continue
		}
		node, info, err := p.planBlock(q, f.View, f.ID, plan)
		if err != nil {
			return nil, err
		}
		viewNodes[f.ID] = node
		jb.es.addDerived(f.ID, info.rows, info.ndvs)
	}

	for i, f := range b.From {
		in := &joinInput{idx: i, item: f, preds: itemPreds[f.ID], viewNode: viewNodes[f.ID]}
		if f.Kind != qtree.JoinInner {
			in.mustFollow = true
			for _, c := range f.Cond {
				selfOnly := true
				for id := range exprRefs(c) {
					if local[id] && id != f.ID {
						selfOnly = false
					}
				}
				// Pre-filtering the right side is equivalent for semi, anti
				// and left outer joins, but NOT for full outer: rows failing
				// the ON condition must still surface null-padded.
				if f.Kind == qtree.JoinFullOuter {
					selfOnly = false
				}
				if selfOnly && !containsSubq(c) {
					// IS TRUE wrappers are redundant in strict filter
					// context; unwrap so index matching sees the predicate.
					if st, ok := c.(*qtree.IsTrue); ok {
						c = st.E
					}
					in.preds = append(in.preds, c)
				} else {
					in.cond = append(in.cond, c)
				}
			}
			for id := range refsOfConds(f.Cond) {
				if local[id] && id != f.ID {
					in.prereq |= 1 << uint(jb.idToIdx[id])
				}
			}
		}
		in.self = jb.standaloneAccess(f, in.preds, in.viewNode)
		if f.Lateral && f.View != nil {
			in.lateral = true
			in.mustFollow = true
			for id := range f.View.OuterRefs() {
				if local[id] {
					in.prereq |= 1 << uint(jb.idToIdx[id])
				}
			}
		}
		jb.inputs = append(jb.inputs, in)
	}

	// Precompute join predicate reference masks.
	jb.predMask = make([]uint64, len(joinPreds))
	for i, pr := range joinPreds {
		for id := range exprRefs(pr) {
			if local[id] {
				jb.predMask[i] |= 1 << uint(jb.idToIdx[id])
			}
		}
	}
	return jb, nil
}

func refsOfConds(conds []qtree.Expr) map[qtree.FromID]bool {
	out := map[qtree.FromID]bool{}
	for _, c := range conds {
		qtree.ColsUsed(c, out)
	}
	return out
}

// enumerate finds the cheapest join order covering all inputs.
func (jb *joinBuilder) enumerate() (PlanNode, error) {
	n := len(jb.inputs)
	if n == 0 {
		return nil, errors.New("optimizer: block has no from items")
	}
	if n == 1 {
		in := jb.inputs[0]
		if in.mustFollow {
			return nil, fmt.Errorf("optimizer: %s join with no left side", in.item.Kind)
		}
		return in.self, nil
	}
	if n <= dpLimit {
		return jb.enumerateDP()
	}
	return jb.enumerateGreedy()
}

func (jb *joinBuilder) enumerateDP() (PlanNode, error) {
	n := len(jb.inputs)
	full := uint64(1)<<uint(n) - 1
	best := make([]*dpEntry, full+1)
	for i, in := range jb.inputs {
		if in.mustFollow {
			continue
		}
		best[1<<uint(i)] = &dpEntry{node: in.self, mask: 1 << uint(i)}
	}
	cut := jb.p.Cutoff
	cutoffHit := false
	for mask := uint64(1); mask <= full; mask++ {
		e := best[mask]
		if e == nil {
			continue
		}
		if cut > 0 && e.node.Cost().Total > cut {
			cutoffHit = true
			continue // §3.4.1: abandon states over budget
		}
		for j := 0; j < n; j++ {
			bit := uint64(1) << uint(j)
			if mask&bit != 0 {
				continue
			}
			in := jb.inputs[j]
			if in.prereq&^mask != 0 {
				continue
			}
			cand, err := jb.joinTo(e, j)
			if err != nil {
				return nil, err
			}
			nm := mask | bit
			if best[nm] == nil || cand.Cost().Total < best[nm].node.Cost().Total {
				best[nm] = &dpEntry{node: cand, mask: nm}
			}
		}
	}
	if best[full] == nil {
		if cutoffHit {
			return nil, ErrCutoff
		}
		return nil, errors.New("optimizer: no feasible join order (constraint cycle)")
	}
	if cut > 0 && best[full].node.Cost().Total > cut {
		return nil, ErrCutoff
	}
	return best[full].node, nil
}

func (jb *joinBuilder) enumerateGreedy() (PlanNode, error) {
	n := len(jb.inputs)
	var cur *dpEntry
	for i, in := range jb.inputs {
		if in.mustFollow {
			continue
		}
		if cur == nil || in.self.Cost().Total < cur.node.Cost().Total {
			cur = &dpEntry{node: in.self, mask: 1 << uint(i)}
		}
	}
	if cur == nil {
		return nil, errors.New("optimizer: no valid leading relation")
	}
	for bits.OnesCount64(cur.mask) < n {
		var bestNext *dpEntry
		for j := 0; j < n; j++ {
			bit := uint64(1) << uint(j)
			if cur.mask&bit != 0 || jb.inputs[j].prereq&^cur.mask != 0 {
				continue
			}
			cand, err := jb.joinTo(cur, j)
			if err != nil {
				return nil, err
			}
			if bestNext == nil || cand.Cost().Total < bestNext.node.Cost().Total {
				bestNext = &dpEntry{node: cand, mask: cur.mask | bit}
			}
		}
		if bestNext == nil {
			return nil, errors.New("optimizer: greedy join order stuck (constraint cycle)")
		}
		cur = bestNext
		if err := jb.p.checkCutoff(cur.node.Cost().Total); err != nil {
			return nil, err
		}
	}
	return cur.node, nil
}

// equiPred is one equality join predicate split into sides.
type equiPred struct {
	left, right qtree.Expr // over the left tree / the joining input
	nullSafe    bool
}

// joinTo joins input j onto the left entry and returns the cheapest method.
func (jb *joinBuilder) joinTo(left *dpEntry, j int) (PlanNode, error) {
	in := jb.inputs[j]
	bit := uint64(1) << uint(j)
	newMask := left.mask | bit

	// Newly applicable join predicates.
	var conds []qtree.Expr
	for i, pr := range jb.joinPreds {
		m := jb.predMask[i]
		if m&^newMask == 0 && m&bit != 0 {
			conds = append(conds, pr)
		}
	}
	// Non-inner join conditions always apply at this join.
	kind := qtree.JoinInner
	if in.item.Kind != qtree.JoinInner {
		kind = in.item.Kind
		conds = append(conds, in.cond...)
	}

	// Split equi predicates.
	var equis []equiPred
	var residual []qtree.Expr
	for _, c := range conds {
		if ep, ok := jb.splitEqui(c, left.mask, bit); ok {
			equis = append(equis, ep)
		} else {
			residual = append(residual, c)
		}
	}

	leftRows := left.node.Cost().Rows
	rightRows := in.self.Cost().Rows
	outRows := jb.joinRows(left, in, kind, equis, residual)

	var candidates []PlanNode
	outCols := joinOutCols(left.node, in.self, kind)

	// Hash join (build right, probe left).
	if len(equis) > 0 && !in.lateral {
		hj := &Join{Method: MethodHash, Kind: kind, L: left.node, R: in.self, On: residual}
		for _, ep := range equis {
			hj.EqL = append(hj.EqL, ep.left)
			hj.EqR = append(hj.EqR, ep.right)
			hj.NullSafeEq = append(hj.NullSafeEq, ep.nullSafe)
		}
		hj.cols = outCols
		hj.cost = Cost{
			Total: left.node.Cost().Total + in.self.Cost().Total +
				rightRows*hashBuildCost + leftRows*hashProbeCost +
				outRows*predsEvalCost(residual),
			Rows: outRows,
		}
		candidates = append(candidates, hj)

		// Sort-merge join (inner only in this engine; null-safe keys need
		// hash semantics).
		anyNullSafe := false
		for _, ep := range equis {
			anyNullSafe = anyNullSafe || ep.nullSafe
		}
		if kind == qtree.JoinInner && !anyNullSafe {
			mj := &Join{Method: MethodMerge, Kind: kind, L: left.node, R: in.self, On: residual}
			for _, ep := range equis {
				mj.EqL = append(mj.EqL, ep.left)
				mj.EqR = append(mj.EqR, ep.right)
			}
			mj.cols = outCols
			sortL := sortFactor * math.Max(leftRows, 2) * math.Log2(math.Max(leftRows, 2))
			sortR := sortFactor * math.Max(rightRows, 2) * math.Log2(math.Max(rightRows, 2))
			mj.cost = Cost{
				Total: left.node.Cost().Total + in.self.Cost().Total +
					sortL + sortR + (leftRows+rightRows)*mergeRowCost +
					outRows*predsEvalCost(residual),
				Rows: outRows,
			}
			candidates = append(candidates, mj)
		}
	}

	// Nested loops with an index probe on the right (base tables). A full
	// outer join needs the whole right side to report unmatched rows, so
	// the probe path does not apply.
	if in.item.Table != nil && len(equis) > 0 &&
		kind != qtree.JoinNullAwareAnti && kind != qtree.JoinFullOuter {
		if probe := jb.tryIndexProbe(in, equis); probe != nil {
			nl := &Join{Method: MethodNL, Kind: kind, L: left.node, R: probe.node, On: append(residual, probe.residual...), RLateral: true}
			nl.cols = outCols
			probes := leftRows
			if kind == qtree.JoinSemi || kind == qtree.JoinAnti {
				// Semijoin/antijoin result caching (§2.1.1): one probe per
				// distinct left key.
				probes = math.Min(leftRows, jb.keyNDV(probe.usedEquis))
			}
			nl.cost = Cost{
				Total: left.node.Cost().Total + probes*probe.perProbe + leftRows*subqCacheProbe,
				Rows:  outRows,
			}
			candidates = append(candidates, nl)
		}
	}

	// Plain nested loops (materialized rescan of the right side), and
	// lateral re-execution for JPPD views.
	{
		nl := &Join{Method: MethodNL, Kind: kind, L: left.node, R: in.self, On: conds, RLateral: in.lateral}
		nl.cols = outCols
		var total float64
		if in.lateral {
			execs := leftRows
			// Lateral executions also cache by correlation values.
			execs = math.Min(execs, jb.lateralNDV(in))
			total = left.node.Cost().Total + execs*in.self.Cost().Total + leftRows*subqCacheProbe
		} else {
			scanFrac := 1.0
			if kind == qtree.JoinSemi || kind == qtree.JoinAnti || kind == qtree.JoinNullAwareAnti {
				scanFrac = 0.55 // stop at first match on average
			}
			total = left.node.Cost().Total + in.self.Cost().Total +
				leftRows*rightRows*scanFrac*(rescanRowCost+predsEvalCost(conds))
		}
		nl.cost = Cost{Total: total, Rows: outRows}
		candidates = append(candidates, nl)
	}

	// A join-method hint filters the candidates when applicable.
	if jb.p.ForceJoin != nil {
		var forced []PlanNode
		for _, c := range candidates {
			if j, ok := c.(*Join); ok && j.Method == *jb.p.ForceJoin {
				forced = append(forced, c)
			}
		}
		if len(forced) > 0 {
			candidates = forced
		}
	}
	var best PlanNode
	for _, c := range candidates {
		if best == nil || c.Cost().Total < best.Cost().Total {
			best = c
		}
	}
	return best, nil
}

// keyNDV estimates the number of distinct left-side key combinations.
func (jb *joinBuilder) keyNDV(equis []equiPred) float64 {
	n := 1.0
	for _, ep := range equis {
		n *= jb.es.ndv(ep.left)
	}
	return math.Max(n, 1)
}

// lateralNDV estimates distinct correlation bindings for a lateral view.
func (jb *joinBuilder) lateralNDV(in *joinInput) float64 {
	n := 1.0
	for _, c := range collectOuterCols(in.item.View, jb.es) {
		if ci, ok := jb.es.col(c); ok {
			n *= math.Max(ci.ndv, 1)
		}
	}
	return math.Max(n, 1)
}

// splitEqui decomposes c as left-expr = right-expr across the join.
func (jb *joinBuilder) splitEqui(c qtree.Expr, leftMask, rightBit uint64) (equiPred, bool) {
	b, ok := c.(*qtree.Bin)
	if !ok || (b.Op != qtree.OpEq && b.Op != qtree.OpNullSafeEq) {
		return equiPred{}, false
	}
	lm := jb.refMask(b.L)
	rm := jb.refMask(b.R)
	switch {
	case lm&^leftMask == 0 && rm&^rightBit == 0 && rm != 0 && lm != 0:
		return equiPred{left: b.L, right: b.R, nullSafe: b.Op == qtree.OpNullSafeEq}, true
	case rm&^leftMask == 0 && lm&^rightBit == 0 && lm != 0 && rm != 0:
		return equiPred{left: b.R, right: b.L, nullSafe: b.Op == qtree.OpNullSafeEq}, true
	}
	return equiPred{}, false
}

func (jb *joinBuilder) refMask(e qtree.Expr) uint64 {
	var m uint64
	for id := range exprRefs(e) {
		if idx, ok := jb.idToIdx[id]; ok {
			m |= 1 << uint(idx)
		}
	}
	return m
}

// joinRows estimates the join output cardinality.
func (jb *joinBuilder) joinRows(left *dpEntry, in *joinInput, kind qtree.JoinKind, equis []equiPred, residual []qtree.Expr) float64 {
	leftRows := left.node.Cost().Rows
	rightRows := in.self.Cost().Rows
	switch kind {
	case qtree.JoinInner:
		rows := leftRows * rightRows
		for _, ep := range equis {
			rows /= math.Max(math.Max(jb.es.ndv(ep.left), jb.es.ndv(ep.right)), 1)
		}
		rows *= jb.es.selectivityAll(residual)
		return math.Max(rows, 1e-3)
	case qtree.JoinSemi:
		return math.Max(leftRows*jb.matchFrac(equis, residual, rightRows), 1e-3)
	case qtree.JoinAnti, qtree.JoinNullAwareAnti:
		return math.Max(leftRows*(1-jb.matchFrac(equis, residual, rightRows)), 1e-3)
	case qtree.JoinLeftOuter:
		rows := leftRows * rightRows
		for _, ep := range equis {
			rows /= math.Max(math.Max(jb.es.ndv(ep.left), jb.es.ndv(ep.right)), 1)
		}
		rows *= jb.es.selectivityAll(residual)
		return math.Max(rows, leftRows)
	case qtree.JoinFullOuter:
		rows := leftRows * rightRows
		for _, ep := range equis {
			rows /= math.Max(math.Max(jb.es.ndv(ep.left), jb.es.ndv(ep.right)), 1)
		}
		rows *= jb.es.selectivityAll(residual)
		return math.Max(rows, math.Max(leftRows, rightRows))
	}
	return math.Max(leftRows, 1)
}

// matchFrac is the estimated fraction of left rows with at least one
// matching right row (containment assumption).
func (jb *joinBuilder) matchFrac(equis []equiPred, residual []qtree.Expr, rightRows float64) float64 {
	frac := 1.0
	for _, ep := range equis {
		ndvL := jb.es.ndv(ep.left)
		ndvR := math.Min(jb.es.ndv(ep.right), rightRows)
		frac *= math.Min(1, ndvR/math.Max(ndvL, 1))
	}
	if len(equis) == 0 {
		// Pure residual-join semi/anti: assume most rows match something.
		frac = 0.8
	}
	frac *= math.Pow(0.9, float64(len(residual)))
	if frac < 0.01 {
		frac = 0.01
	}
	if frac > 0.99 {
		frac = 0.99
	}
	return frac
}

func joinOutCols(l, r PlanNode, kind qtree.JoinKind) []ColID {
	switch kind {
	case qtree.JoinSemi, qtree.JoinAnti, qtree.JoinNullAwareAnti:
		return l.Columns()
	}
	out := append([]ColID(nil), l.Columns()...)
	return append(out, r.Columns()...)
}

// indexProbe describes an index-based NL probe of the right input.
type indexProbe struct {
	node      PlanNode
	perProbe  float64
	usedEquis []equiPred
	residual  []qtree.Expr
}

// tryIndexProbe builds an IndexScan on the joining table using the equi
// predicates as probe keys (right side = indexed column).
func (jb *joinBuilder) tryIndexProbe(in *joinInput, equis []equiPred) *indexProbe {
	t := in.item.Table
	baseRows := 1000.0
	if st := t.Stats(); st != nil {
		baseRows = math.Max(float64(st.RowCount), 1)
	}
	var best *indexProbe
	for _, idx := range t.Indexes {
		var keys []qtree.Expr
		var used []equiPred
		usedSet := map[int]bool{}
		for _, colOrd := range idx.Cols {
			found := false
			for ei, ep := range equis {
				if usedSet[ei] {
					continue
				}
				if c, ok := ep.right.(*qtree.Col); ok && c.From == in.item.ID && c.Ord == colOrd && !ep.nullSafe {
					keys = append(keys, ep.left)
					used = append(used, ep)
					usedSet[ei] = true
					found = true
					break
				}
			}
			if !found {
				break
			}
		}
		if len(keys) == 0 {
			continue
		}
		var residual []qtree.Expr
		for ei, ep := range equis {
			if !usedSet[ei] {
				residual = append(residual, &qtree.Bin{Op: qtree.OpEq, L: ep.left, R: ep.right})
			}
		}
		matchSel := 1.0
		for i := range keys {
			ci, _ := jb.es.col(&qtree.Col{From: in.item.ID, Ord: idx.Cols[i]})
			matchSel *= clampSel(1 / math.Max(ci.ndv, 1))
		}
		matchRows := math.Max(baseRows*matchSel, 1e-3)
		filter := append([]qtree.Expr(nil), in.preds...)
		node := &IndexScan{
			Table: t, From: in.item.ID, Index: idx,
			EqKeys: keys, Filter: filter,
		}
		node.cols = tableCols(in.item)
		perProbe := indexProbeCost + matchRows*indexRowCost + matchRows*predsEvalCost(filter)
		node.cost = Cost{Total: perProbe, Rows: math.Max(matchRows*jb.es.selectivityAll(filter), 1e-3)}
		cand := &indexProbe{node: node, perProbe: perProbe, usedEquis: used, residual: residual}
		if best == nil || cand.perProbe < best.perProbe {
			best = cand
		}
	}
	return best
}
