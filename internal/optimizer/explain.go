package optimizer

import (
	"fmt"
	"strings"

	"repro/internal/qtree"
)

// Explain renders the plan as an indented operator tree with cost
// annotations, similar to EXPLAIN PLAN output.
func Explain(p *Plan) string { return ExplainWith(p, nil) }

// ExplainWith is Explain with a per-node annotation hook: annotate's return
// value is appended verbatim to the node's line. A nil annotate renders the
// plain cost tree; package exec uses the hook to attach EXPLAIN ANALYZE
// runtime counters without the optimizer knowing about execution.
func ExplainWith(p *Plan, annotate func(PlanNode) string) string {
	var sb strings.Builder
	explainNode(&sb, p, p.Root, 0, annotate)
	return sb.String()
}

func explainNode(sb *strings.Builder, p *Plan, n PlanNode, depth int, annotate func(PlanNode) string) {
	indent := strings.Repeat("  ", depth)
	c := n.Cost()
	extra := ""
	if annotate != nil {
		extra = annotate(n)
	}
	fmt.Fprintf(sb, "%s%s  (cost=%.1f rows=%.0f)%s\n", indent, describe(n), c.Total, c.Rows, extra)
	// Subplans referenced by this node's predicates.
	for _, e := range nodePreds(n) {
		qtree.WalkExpr(e, func(x qtree.Expr) bool {
			if s, ok := x.(*qtree.Subq); ok {
				if sp, ok := p.Subplans[s]; ok {
					fmt.Fprintf(sb, "%s  SubPlan [%s] (per-exec=%.1f effective-execs=%.0f)\n",
						indent, s.Kind, sp.PerExec, sp.EffectiveExecs)
					explainNode(sb, p, sp.Root, depth+2, annotate)
				}
				return false
			}
			return true
		})
	}
	for _, ch := range n.Children() {
		explainNode(sb, p, ch, depth+1, annotate)
	}
}

func describe(n PlanNode) string {
	switch v := n.(type) {
	case *SeqScan:
		if len(v.Filter) > 0 {
			return fmt.Sprintf("%s filter=%s", v.Label(), exprList(v.Filter))
		}
		return v.Label()
	case *IndexScan:
		s := v.Label()
		if len(v.EqKeys) > 0 {
			s += fmt.Sprintf(" eq=%s", exprList(v.EqKeys))
		}
		if v.Lo != nil || v.Hi != nil {
			s += " range"
		}
		if len(v.Filter) > 0 {
			s += fmt.Sprintf(" filter=%s", exprList(v.Filter))
		}
		return s
	case *Filter:
		return fmt.Sprintf("%s %s", v.Label(), exprList(v.Preds))
	case *Join:
		s := v.Label()
		if len(v.EqL) > 0 {
			var pairs []string
			for i := range v.EqL {
				pairs = append(pairs, fmt.Sprintf("%s=%s", v.EqL[i], v.EqR[i]))
			}
			s += " on " + strings.Join(pairs, " AND ")
		} else if len(v.On) > 0 {
			s += " on " + exprList(v.On)
		}
		return s
	case *Agg:
		s := v.Label()
		if len(v.GroupBy) > 0 {
			s += " by " + exprList(v.GroupBy)
		}
		return s
	case *Sort:
		return fmt.Sprintf("%s %s", v.Label(), exprList(v.Keys))
	case *Limit:
		return fmt.Sprintf("%s %d", v.Label(), v.N)
	default:
		return n.Label()
	}
}

func nodePreds(n PlanNode) []qtree.Expr {
	switch v := n.(type) {
	case *Filter:
		return v.Preds
	case *SeqScan:
		return v.Filter
	case *IndexScan:
		return v.Filter
	case *Join:
		return v.On
	case *Project:
		return v.Exprs
	}
	return nil
}

func exprList(es []qtree.Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, " AND ")
}
