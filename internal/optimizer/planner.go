package optimizer

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/catalog"
	"repro/internal/qtree"
)

// ErrCutoff is returned when optimization is aborted because the plan cost
// exceeded the cut-off budget (§3.4.1).
var ErrCutoff = errors.New("optimizer: cost exceeded cut-off budget")

// ErrBudget is returned when optimization is aborted because the planner's
// context was canceled or its deadline passed. The CBQT driver treats it as
// "stop searching, keep the best state so far", never as a query failure.
var ErrBudget = errors.New("optimizer: budget exhausted")

// Counters accumulate optimizer work statistics; the CBQT experiments
// (Table 1) read BlocksOptimized and CacheHits.
type Counters struct {
	// BlocksOptimized counts SELECT blocks fully optimized.
	BlocksOptimized int
	// CacheHits counts blocks whose optimization was avoided by reusing a
	// cost annotation (§3.4.2).
	CacheHits int
}

// Planner is the physical optimizer.
type Planner struct {
	Cat *catalog.Catalog
	// Cache, when non-nil, reuses query sub-tree cost annotations across
	// Optimize calls (§3.4.2). Only consulted in CostOnly mode.
	Cache *CostCache
	// CostOnly plans for costing: cached blocks return stub nodes and the
	// resulting plan must not be executed.
	CostOnly bool
	// Cutoff aborts optimization with ErrCutoff once the accumulated cost
	// of the plan under construction exceeds it (§3.4.1). Zero disables.
	Cutoff float64
	// ForceJoin, when non-nil, restricts join method selection to the
	// given method wherever it is applicable — a debugging hint akin to
	// Oracle's USE_NL/USE_HASH/USE_MERGE.
	ForceJoin *JoinMethod
	// Ctx, when non-nil, is polled at block-planning boundaries; a canceled
	// context aborts optimization with ErrBudget.
	Ctx context.Context
	// Deadline, when non-zero, aborts optimization with ErrBudget once the
	// wall clock passes it. Cheaper than a context for the per-state
	// cost-only planners the CBQT search spawns in bulk.
	Deadline time.Time

	Counters Counters
}

// New creates a planner over the catalog.
func New(cat *catalog.Catalog) *Planner {
	return &Planner{Cat: cat}
}

// Optimize produces a physical plan for the query.
func (p *Planner) Optimize(q *qtree.Query) (*Plan, error) {
	plan := &Plan{Subplans: map[*qtree.Subq]*SubPlan{}}
	node, _, err := p.planBlock(q, q.Root, 0, plan)
	if err != nil {
		return nil, err
	}
	plan.Root = node
	plan.Cost = node.Cost()
	return plan, nil
}

// planResult carries block-planning outputs needed by enclosing blocks.
type blockInfo struct {
	rows float64
	ndvs []float64 // per output column
}

// checkCutoff aborts when cost exceeds the budget.
func (p *Planner) checkCutoff(c float64) error {
	if p.Cutoff > 0 && c > p.Cutoff {
		return ErrCutoff
	}
	return nil
}

// checkBudget aborts when the planner's context is canceled or its deadline
// has passed.
func (p *Planner) checkBudget() error {
	if p.Ctx != nil {
		select {
		case <-p.Ctx.Done():
			return ErrBudget
		default:
		}
	}
	//lint:allow nodeterm the wall-clock deadline is the budget feature itself; on expiry the search degrades to the best fully-costed state, it never alters which states are enumerated
	if !p.Deadline.IsZero() && time.Now().After(p.Deadline) {
		return ErrBudget
	}
	return nil
}

// planBlock plans one block. outFrom is the from-item ID under which the
// enclosing block references this block's output (0 for the statement
// root). It returns the plan node and the block info used for estimation.
func (p *Planner) planBlock(q *qtree.Query, b *qtree.Block, outFrom qtree.FromID, plan *Plan) (PlanNode, blockInfo, error) {
	if err := p.checkBudget(); err != nil {
		return nil, blockInfo{}, err
	}
	if b.Set != nil {
		return p.planSetOp(q, b, outFrom, plan)
	}
	// Cost-annotation reuse (§3.4.2).
	var key string
	if p.Cache != nil && p.CostOnly {
		key = q.CanonicalKey(b)
		if ann, ok := p.Cache.get(key); ok {
			p.Counters.CacheHits++
			stub := &cachedStub{}
			stub.cols = outputCols(outFrom, len(b.OutCols()))
			stub.cost = ann.cost
			return stub, blockInfo{rows: ann.cost.Rows, ndvs: ann.ndvs}, nil
		}
	}
	node, info, err := p.planSelectBlock(q, b, outFrom, plan)
	if err != nil {
		return nil, blockInfo{}, err
	}
	p.Counters.BlocksOptimized++
	if key != "" {
		p.Cache.put(key, costAnnotation{cost: node.Cost(), ndvs: info.ndvs})
	}
	return node, info, nil
}

// cachedStub stands in for a block whose cost was found in the annotation
// cache; it is never executed.
type cachedStub struct{ base }

func (n *cachedStub) Children() []PlanNode { return nil }
func (n *cachedStub) Label() string        { return "CachedCost" }

// IsCostStub reports whether n is a cost-annotation stub standing in for a
// cached block. Stubs appear only in cost-only plans (CostOnly planning
// with a cache hit), never in executable plans; static plan checks treat
// them as opaque leaves.
func IsCostStub(n PlanNode) bool { _, ok := n.(*cachedStub); return ok }

func outputCols(outFrom qtree.FromID, n int) []ColID {
	cols := make([]ColID, n)
	for i := range cols {
		cols[i] = ColID{From: outFrom, Ord: i}
	}
	return cols
}

func (p *Planner) planSetOp(q *qtree.Query, b *qtree.Block, outFrom qtree.FromID, plan *Plan) (PlanNode, blockInfo, error) {
	sn := &SetNode{Kind: b.Set.Kind, OutFrom: outFrom}
	var total, rows float64
	var firstInfo blockInfo
	for i, c := range b.Set.Children {
		childFrom := q.NewFromID()
		cn, info, err := p.planBlock(q, c, childFrom, plan)
		if err != nil {
			return nil, blockInfo{}, err
		}
		if i == 0 {
			firstInfo = info
		}
		sn.Inputs = append(sn.Inputs, cn)
		total += cn.Cost().Total
		switch b.Set.Kind {
		case qtree.SetUnion, qtree.SetUnionAll:
			rows += cn.Cost().Rows
		case qtree.SetIntersect:
			if i == 0 || cn.Cost().Rows < rows {
				rows = cn.Cost().Rows
			}
			rows *= 0.5
			if i == 0 {
				rows = cn.Cost().Rows
			}
		case qtree.SetMinus:
			if i == 0 {
				rows = cn.Cost().Rows
			} else {
				rows *= 0.5
			}
		}
		total += cn.Cost().Rows * hashBuildCost // set-op bookkeeping
	}
	if b.Set.Kind != qtree.SetUnionAll {
		total += rows * distinctRowCost
		rows *= 0.9
	}
	sn.cols = outputCols(outFrom, len(b.OutCols()))
	sn.cost = Cost{Total: total, Rows: math.Max(rows, 1)}
	if err := p.checkCutoff(total); err != nil {
		return nil, blockInfo{}, err
	}
	var node PlanNode = sn
	// ORDER BY / LIMIT on the set operation.
	if len(b.OrderBy) > 0 {
		keys := make([]qtree.Expr, len(b.OrderBy))
		desc := make([]bool, len(b.OrderBy))
		for i, o := range b.OrderBy {
			// Set-op order keys are output columns (From 0 convention).
			keys[i] = &qtree.Col{From: outFrom, Ord: ordOfSetKey(o.Expr), Name: "C"}
			desc[i] = o.Desc
		}
		s := &Sort{Child: node, Keys: keys, Desc: desc}
		s.cols = node.Columns()
		s.cost = sortCost(node.Cost())
		node = s
	}
	if b.Limit > 0 {
		l := &Limit{Child: node, N: b.Limit}
		l.cols = node.Columns()
		l.cost = limitCost(node, b.Limit)
		node = l
	}
	info := blockInfo{rows: node.Cost().Rows, ndvs: firstInfo.ndvs}
	return node, info, nil
}

func ordOfSetKey(e qtree.Expr) int {
	if c, ok := e.(*qtree.Col); ok {
		return c.Ord
	}
	return 0
}

func sortCost(in Cost) Cost {
	n := math.Max(in.Rows, 2)
	return Cost{Total: in.Total + sortFactor*n*math.Log2(n), Rows: in.Rows}
}

func limitCost(child PlanNode, n int64) Cost {
	c := child.Cost()
	out := math.Min(float64(n), c.Rows)
	// Streaming children stop early; blocking children must complete.
	if isStreaming(child) && c.Rows > 0 {
		frac := math.Min(1, float64(n)/c.Rows)
		return Cost{Total: c.Total * frac, Rows: out}
	}
	return Cost{Total: c.Total + out*projectRowCost, Rows: out}
}

// isStreaming reports whether a node produces rows incrementally, so a
// limit on top scales its cost.
func isStreaming(n PlanNode) bool {
	switch v := n.(type) {
	case *Sort, *Agg, *Distinct, *SetNode, *cachedStub:
		return false
	case *Join:
		// Hash/merge joins block on the build/sort phase; treat the probe
		// side as streaming only for NL.
		if v.Method == MethodNL {
			return isStreaming(v.L)
		}
		return false
	case *Filter:
		return isStreaming(v.Child)
	case *Project:
		return isStreaming(v.Child)
	case *Limit:
		return isStreaming(v.Child)
	}
	return true
}

// exprRefs collects the from IDs referenced by e (including inside nested
// subquery blocks).
func exprRefs(e qtree.Expr) map[qtree.FromID]bool {
	s := map[qtree.FromID]bool{}
	qtree.ColsUsed(e, s)
	return s
}

// containsSubq reports whether e contains a subquery expression.
func containsSubq(e qtree.Expr) bool {
	found := false
	qtree.WalkExpr(e, func(x qtree.Expr) bool {
		if _, ok := x.(*qtree.Subq); ok {
			found = true
		}
		return !found
	})
	return found
}

// expensiveEvalCost returns extra per-row cost for expensive function calls
// in a predicate.
func expensiveEvalCost(e qtree.Expr) float64 {
	var c float64
	qtree.WalkExpr(e, func(x qtree.Expr) bool {
		if f, ok := x.(*qtree.Func); ok {
			c += f.Def.CostPerCall
		}
		return true
	})
	return c
}

// predsEvalCost is the per-row evaluation cost of a predicate list
// (excluding subquery execution, handled separately).
func predsEvalCost(preds []qtree.Expr) float64 {
	c := float64(len(preds)) * cpuEvalCost
	for _, p := range preds {
		c += expensiveEvalCost(p)
	}
	return c
}

// planSelectBlock plans a SELECT block (no set operation).
func (p *Planner) planSelectBlock(q *qtree.Query, b *qtree.Block, outFrom qtree.FromID, plan *Plan) (PlanNode, blockInfo, error) {
	local := b.LocalFromIDs()

	// Classify WHERE conjuncts.
	var subqPreds []qtree.Expr // contain subqueries: final filter
	var itemPreds = map[qtree.FromID][]qtree.Expr{}
	var joinPreds []qtree.Expr
	for _, e := range b.Where {
		if containsSubq(e) {
			subqPreds = append(subqPreds, e)
			continue
		}
		refs := exprRefs(e)
		nLocal := 0
		var only qtree.FromID
		for id := range refs {
			if local[id] {
				nLocal++
				only = id
			}
		}
		switch {
		case nLocal <= 1 && nLocal == len(refs) && nLocal == 1:
			itemPreds[only] = append(itemPreds[only], e)
		case nLocal == 1:
			// Single local item plus correlation parameters: pushable to
			// the item's access path (this is what makes TIS with an index
			// on the correlated column fast).
			itemPreds[only] = append(itemPreds[only], e)
		case nLocal == 0:
			// Pure-parameter predicate: applies once per outer row; treat
			// as a cheap top filter.
			subqPreds = append(subqPreds, e)
		default:
			joinPreds = append(joinPreds, e)
		}
	}

	// Build join inputs (plans views recursively).
	jb, err := p.newJoinBuilder(q, b, itemPreds, joinPreds, plan)
	if err != nil {
		return nil, blockInfo{}, err
	}
	node, err := jb.enumerate()
	if err != nil {
		return nil, blockInfo{}, err
	}

	// Final filter: subquery predicates and parameter predicates.
	if len(subqPreds) > 0 {
		node, err = p.buildSubqFilter(q, node, subqPreds, jb.es, plan)
		if err != nil {
			return nil, blockInfo{}, err
		}
	}
	if err := p.checkCutoff(node.Cost().Total); err != nil {
		return nil, blockInfo{}, err
	}

	selExprs := make([]qtree.Expr, len(b.Select))
	for i, it := range b.Select {
		selExprs[i] = it.Expr
	}
	havingPreds := append([]qtree.Expr(nil), b.Having...)
	orderExprs := make([]qtree.Expr, len(b.OrderBy))
	for i, o := range b.OrderBy {
		orderExprs[i] = o.Expr
	}

	// Aggregation.
	if b.HasGroupBy() {
		node, selExprs, havingPreds, orderExprs, err = p.buildAgg(q, b, node, jb.es, selExprs, havingPreds, orderExprs)
		if err != nil {
			return nil, blockInfo{}, err
		}
		if len(havingPreds) > 0 {
			// HAVING may itself contain subqueries.
			var plain, subq []qtree.Expr
			for _, h := range havingPreds {
				if containsSubq(h) {
					subq = append(subq, h)
				} else {
					plain = append(plain, h)
				}
			}
			if len(plain) > 0 {
				f := &Filter{Child: node, Preds: plain}
				f.cols = node.Columns()
				sel := 0.25 * float64(len(plain)) // havings on aggregates: rough
				if sel > 1 {
					sel = 1
				}
				f.cost = Cost{
					Total: node.Cost().Total + node.Cost().Rows*predsEvalCost(plain),
					Rows:  math.Max(node.Cost().Rows*sel, 1),
				}
				node = f
			}
			if len(subq) > 0 {
				node, err = p.buildSubqFilter(q, node, subq, jb.es, plan)
				if err != nil {
					return nil, blockInfo{}, err
				}
			}
		}
	}

	// Window functions: computed over the filtered rows, before
	// projection/distinct/order.
	if b.HasWindowFuncs() {
		node, selExprs = p.buildWindow(q, node, selExprs)
		// Order-by expressions may reference the same window functions via
		// select aliases; rewrite them identically.
		win, ok := node.(*Window)
		if !ok {
			return nil, blockInfo{}, fmt.Errorf("optimizer: window build produced %T, want *Window", node)
		}
		for i, oe := range orderExprs {
			orderExprs[i] = rewriteWindowRefs(oe, win)
		}
	}

	// Compile subplans for subqueries in the select list / order by.
	for _, e := range selExprs {
		if err := p.compileExprSubplans(q, e, jb.es, plan); err != nil {
			return nil, blockInfo{}, err
		}
	}

	// Projection (+ hidden sort keys when ORDER BY needs non-projected
	// expressions and there is no DISTINCT).
	projExprs := append([]qtree.Expr(nil), selExprs...)
	sortOrds := make([]int, len(orderExprs))
	for i, oe := range orderExprs {
		idx := findEquivExpr(projExprs[:len(selExprs)], oe)
		if idx < 0 {
			if b.Distinct {
				return nil, blockInfo{}, fmt.Errorf("optimizer: ORDER BY expression not in SELECT DISTINCT list")
			}
			projExprs = append(projExprs, oe)
			idx = len(projExprs) - 1
		}
		sortOrds[i] = idx
	}

	proj := &Project{Child: node, Exprs: projExprs}
	proj.cols = outputCols(outFrom, len(projExprs))
	projCost := node.Cost().Rows * (projectRowCost * float64(len(projExprs)))
	for _, e := range projExprs {
		projCost += node.Cost().Rows * expensiveEvalCost(e)
	}
	proj.cost = Cost{Total: node.Cost().Total + projCost, Rows: node.Cost().Rows}
	node = proj

	info := blockInfo{rows: node.Cost().Rows}
	info.ndvs = p.outputNDVs(b, jb.es, node.Cost().Rows, selExprs)

	if b.Distinct {
		d := &Distinct{Child: node}
		d.cols = node.Columns()
		dRows := distinctRows(info.ndvs, node.Cost().Rows)
		d.cost = Cost{Total: node.Cost().Total + node.Cost().Rows*distinctRowCost, Rows: dRows}
		node = d
		info.rows = dRows
	}

	if len(orderExprs) > 0 {
		keys := make([]qtree.Expr, len(orderExprs))
		desc := make([]bool, len(orderExprs))
		for i := range orderExprs {
			keys[i] = &qtree.Col{From: outFrom, Ord: sortOrds[i], Name: "SORTKEY"}
			desc[i] = b.OrderBy[i].Desc
		}
		s := &Sort{Child: node, Keys: keys, Desc: desc}
		s.cols = node.Columns()
		s.cost = sortCost(node.Cost())
		node = s
	}
	if len(projExprs) > len(b.Select) {
		// Drop hidden sort-key columns from the output.
		trim := &Project{Child: node}
		for i := range b.Select {
			trim.Exprs = append(trim.Exprs, &qtree.Col{From: outFrom, Ord: i, Name: "C"})
		}
		trim.cols = outputCols(outFrom, len(b.Select))
		trim.cost = Cost{Total: node.Cost().Total + node.Cost().Rows*projectRowCost, Rows: node.Cost().Rows}
		node = trim
	}

	if b.Limit > 0 {
		l := &Limit{Child: node, N: b.Limit}
		l.cols = node.Columns()
		l.cost = limitCost(node, b.Limit)
		node = l
		info.rows = node.Cost().Rows
	}

	if err := p.checkCutoff(node.Cost().Total); err != nil {
		return nil, blockInfo{}, err
	}
	return node, info, nil
}

// distinctRows estimates output rows of DISTINCT over the projection.
func distinctRows(ndvs []float64, inRows float64) float64 {
	prod := 1.0
	for _, n := range ndvs {
		prod *= math.Max(n, 1)
		if prod > inRows {
			return math.Max(inRows*0.9, 1)
		}
	}
	return math.Max(math.Min(prod, inRows), 1)
}

// outputNDVs estimates the distinct count of each output expression.
func (p *Planner) outputNDVs(b *qtree.Block, es *estimator, outRows float64, selExprs []qtree.Expr) []float64 {
	ndvs := make([]float64, len(selExprs))
	for i, e := range selExprs {
		n := es.ndv(e)
		ndvs[i] = math.Min(n, math.Max(outRows, 1))
	}
	return ndvs
}

// findEquivExpr locates e in list by rendered structural equality.
func findEquivExpr(list []qtree.Expr, e qtree.Expr) int {
	es := e.String()
	for i, x := range list {
		if x.String() == es {
			return i
		}
	}
	return -1
}
