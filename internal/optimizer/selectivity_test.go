package optimizer

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/qtree"
	"repro/internal/storage"
)

// estTable builds a table with uniform integer values 1..n and collects
// real statistics.
func estTable(t *testing.T, n int) (*estimator, qtree.FromID) {
	t.Helper()
	meta := &catalog.Table{
		Name: "T_EST",
		Cols: []catalog.Column{
			{Name: "V", Type: datum.KInt},
			{Name: "GRP", Type: datum.KInt, Nullable: true},
			{Name: "S", Type: datum.KString},
		},
	}
	tbl := storage.NewTable(meta)
	for i := 1; i <= n; i++ {
		g := datum.NewInt(int64(i % 10))
		if i%20 == 0 {
			g = datum.Null
		}
		tbl.MustAppend(datum.NewInt(int64(i)), g, datum.NewString(string(rune('a'+i%26))))
	}
	meta.SetStats(storage.Analyze(tbl))
	es := newEstimator()
	es.addTable(1, meta)
	return es, 1
}

func col(id qtree.FromID, ord int) *qtree.Col {
	return &qtree.Col{From: id, Ord: ord, Name: "C"}
}

func cInt(v int64) qtree.Expr { return &qtree.Const{Val: datum.NewInt(v)} }

func TestEqSelectivityFromNDV(t *testing.T) {
	es, id := estTable(t, 1000)
	sel := es.selectivity(&qtree.Bin{Op: qtree.OpEq, L: col(id, 0), R: cInt(500)})
	// 1000 distinct values: about 1/1000.
	if sel < 0.0005 || sel > 0.005 {
		t.Errorf("eq selectivity = %v, want ~0.001", sel)
	}
	sel = es.selectivity(&qtree.Bin{Op: qtree.OpEq, L: col(id, 1), R: cInt(3)})
	// 10 distinct groups: about 1/10.
	if sel < 0.05 || sel > 0.2 {
		t.Errorf("group eq selectivity = %v, want ~0.1", sel)
	}
}

func TestRangeSelectivityInterpolates(t *testing.T) {
	es, id := estTable(t, 1000)
	cases := []struct {
		op     qtree.BinOp
		val    int64
		lo, hi float64
	}{
		{qtree.OpLt, 500, 0.4, 0.6},
		{qtree.OpLt, 100, 0.05, 0.15},
		{qtree.OpGt, 900, 0.05, 0.15},
		{qtree.OpGe, 1, 0.9, 1.0},
		{qtree.OpLe, 1000, 0.9, 1.0},
	}
	for _, c := range cases {
		sel := es.selectivity(&qtree.Bin{Op: c.op, L: col(id, 0), R: cInt(c.val)})
		if sel < c.lo || sel > c.hi {
			t.Errorf("sel(v %v %d) = %v, want in [%v, %v]", c.op, c.val, sel, c.lo, c.hi)
		}
	}
}

func TestNarrowRangeBetween(t *testing.T) {
	es, id := estTable(t, 1000)
	// v >= 100 AND v <= 130: true fraction 0.031. The two one-sided
	// estimates must compose to something in the right ballpark rather
	// than collapsing to zero (the intra-bucket interpolation regression).
	s1 := es.selectivity(&qtree.Bin{Op: qtree.OpGe, L: col(id, 0), R: cInt(100)})
	s2 := es.selectivity(&qtree.Bin{Op: qtree.OpLe, L: col(id, 0), R: cInt(130)})
	combined := s1 + s2 - 1
	if combined < 0.01 || combined > 0.08 {
		t.Errorf("narrow range = %v (s1=%v s2=%v), want ~0.031", combined, s1, s2)
	}
}

func TestNullPredicateSelectivity(t *testing.T) {
	es, id := estTable(t, 1000)
	isNull := es.selectivity(&qtree.IsNull{E: col(id, 1)})
	if isNull < 0.02 || isNull > 0.1 {
		t.Errorf("IS NULL = %v, want ~0.05", isNull)
	}
	notNull := es.selectivity(&qtree.IsNull{E: col(id, 1), Neg: true})
	if math.Abs(isNull+notNull-1) > 1e-9 {
		t.Errorf("IS NULL + IS NOT NULL = %v", isNull+notNull)
	}
}

func TestBooleanCombinators(t *testing.T) {
	es, id := estTable(t, 1000)
	p := &qtree.Bin{Op: qtree.OpLt, L: col(id, 0), R: cInt(500)}
	q := &qtree.Bin{Op: qtree.OpEq, L: col(id, 1), R: cInt(1)}
	and := es.selectivity(&qtree.Bin{Op: qtree.OpAnd, L: p, R: q})
	or := es.selectivity(&qtree.Bin{Op: qtree.OpOr, L: p, R: q})
	sp, sq := es.selectivity(p), es.selectivity(q)
	if math.Abs(and-sp*sq) > 1e-9 {
		t.Errorf("AND = %v, want %v", and, sp*sq)
	}
	if math.Abs(or-(sp+sq-sp*sq)) > 1e-9 {
		t.Errorf("OR = %v, want %v", or, sp+sq-sp*sq)
	}
	not := es.selectivity(&qtree.Not{E: p})
	if math.Abs(not-(1-sp)) > 1e-9 {
		t.Errorf("NOT = %v, want %v", not, 1-sp)
	}
}

func TestInListSelectivityScales(t *testing.T) {
	es, id := estTable(t, 1000)
	one := es.selectivity(&qtree.InList{E: col(id, 1), Vals: []qtree.Expr{cInt(1)}})
	three := es.selectivity(&qtree.InList{E: col(id, 1), Vals: []qtree.Expr{cInt(1), cInt(2), cInt(3)}})
	if three < 2*one {
		t.Errorf("IN list should scale with size: 1 -> %v, 3 -> %v", one, three)
	}
}

func TestJoinPredSelectivity(t *testing.T) {
	es, id := estTable(t, 1000)
	es2 := es // same estimator hosts a second relation
	meta := &catalog.Table{
		Name: "T2_EST",
		Cols: []catalog.Column{{Name: "W", Type: datum.KInt}},
	}
	tbl := storage.NewTable(meta)
	for i := 1; i <= 100; i++ {
		tbl.MustAppend(datum.NewInt(int64(i % 10)))
	}
	meta.SetStats(storage.Analyze(tbl))
	es2.addTable(2, meta)
	// v(1000 ndv) = w(10 ndv): selectivity 1/max = 1/1000.
	sel := es2.selectivity(&qtree.Bin{Op: qtree.OpEq, L: col(id, 0), R: col(2, 0)})
	if math.Abs(sel-0.001) > 0.0005 {
		t.Errorf("join selectivity = %v, want ~0.001", sel)
	}
}

func TestUnknownParameterSelectivity(t *testing.T) {
	es, id := estTable(t, 1000)
	// Reference to an unregistered relation: a correlation parameter.
	sel := es.selectivity(&qtree.Bin{Op: qtree.OpEq, L: col(id, 1), R: col(99, 0)})
	if sel <= 0 || sel > 0.5 {
		t.Errorf("parameter eq = %v", sel)
	}
}

func TestSelectivityClamps(t *testing.T) {
	if clampSel(-1) != 1e-6 || clampSel(2) != 1 {
		t.Error("clampSel bounds")
	}
	if clamp01(-0.5) != 0 || clamp01(1.5) != 1 {
		t.Error("clamp01 bounds")
	}
}

func TestStringRangeInterpolation(t *testing.T) {
	f, ok := interpolate(datum.NewString("a"), datum.NewString("z"), datum.NewString("m"))
	if !ok || f < 0.3 || f > 0.7 {
		t.Errorf("string interpolation = %v, %v", f, ok)
	}
	// Dates as strings interpolate naturally.
	f, ok = interpolate(datum.NewString("19900101"), datum.NewString("20051231"), datum.NewString("19980101"))
	if !ok || f < 0.3 || f > 0.7 {
		t.Errorf("date interpolation = %v, %v", f, ok)
	}
	if _, ok := interpolate(datum.NewString("a"), datum.NewInt(5), datum.NewString("m")); ok {
		t.Error("mixed-kind interpolation should fail")
	}
}

func TestSubquerySelectivityDefaults(t *testing.T) {
	es, _ := estTable(t, 100)
	blk := &qtree.Block{}
	for _, k := range []qtree.SubqKind{qtree.SubqExists, qtree.SubqNotExists, qtree.SubqIn, qtree.SubqNotIn, qtree.SubqAnyCmp, qtree.SubqAllCmp} {
		s := es.selectivity(&qtree.Subq{Kind: k, Block: blk})
		if s <= 0 || s > 1 {
			t.Errorf("subq %v selectivity = %v", k, s)
		}
	}
}
