package datum

import (
	"testing"
	"testing/quick"
)

func TestKinds(t *testing.T) {
	cases := []struct {
		d    Datum
		kind Kind
		null bool
	}{
		{Null, KNull, true},
		{NewInt(7), KInt, false},
		{NewFloat(2.5), KFloat, false},
		{NewString("x"), KString, false},
		{NewBool(true), KBool, false},
		{Datum{}, KNull, true}, // zero value is NULL
	}
	for _, c := range cases {
		if c.d.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.d, c.d.Kind(), c.kind)
		}
		if c.d.IsNull() != c.null {
			t.Errorf("%v: IsNull = %v, want %v", c.d, c.d.IsNull(), c.null)
		}
	}
}

func TestAccessors(t *testing.T) {
	if NewInt(42).Int() != 42 {
		t.Error("Int accessor")
	}
	if NewFloat(1.5).Float() != 1.5 {
		t.Error("Float accessor")
	}
	if NewInt(3).Float() != 3.0 {
		t.Error("Float on int should convert")
	}
	if NewString("hi").Str() != "hi" {
		t.Error("Str accessor")
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool accessor")
	}
}

func TestAccessorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Int() on string did not panic")
		}
	}()
	_ = NewString("x").Int()
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Datum
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("19990101"), NewString("19980101"), 1}, // date-as-string
		{NewBool(false), NewBool(true), -1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Fatalf("Compare(%v, %v): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(Null, NewInt(1)); err == nil {
		t.Error("Compare with NULL should error")
	}
	if _, err := Compare(NewInt(1), NewString("x")); err == nil {
		t.Error("Compare int with string should error")
	}
}

func TestSameValue(t *testing.T) {
	if !SameValue(Null, Null) {
		t.Error("NULL should SameValue NULL (grouping semantics)")
	}
	if SameValue(Null, NewInt(0)) {
		t.Error("NULL should not SameValue 0")
	}
	if !SameValue(NewInt(2), NewFloat(2.0)) {
		t.Error("2 should SameValue 2.0")
	}
	if SameValue(NewInt(2), NewString("2")) {
		t.Error("2 should not SameValue '2'")
	}
}

func TestKeyDistinguishesValues(t *testing.T) {
	ds := []Datum{
		Null, NewInt(0), NewInt(1), NewFloat(1.5), NewString(""),
		NewString("1"), NewBool(false), NewBool(true), NewString("N"),
	}
	seen := map[string]Datum{}
	for _, d := range ds {
		k := d.Key()
		if prev, ok := seen[k]; ok {
			t.Errorf("Key collision between %v and %v", prev, d)
		}
		seen[k] = d
	}
	// Integral float and int must share a key (grouping equality).
	if NewInt(7).Key() != NewFloat(7.0).Key() {
		t.Error("7 and 7.0 should share a grouping key")
	}
}

func TestKeyMatchesSameValue(t *testing.T) {
	// Property: Key equality must coincide with SameValue for the kinds we
	// generate.
	f := func(a, b int64) bool {
		da, db := NewInt(a), NewInt(b)
		return (da.Key() == db.Key()) == SameValue(da, db)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b float64) bool {
		da, db := NewFloat(a), NewFloat(b)
		return (da.Key() == db.Key()) == SameValue(da, db)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestArith(t *testing.T) {
	mustD := func(d Datum, err error) Datum {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if got := mustD(Add(NewInt(2), NewInt(3))); got.Int() != 5 {
		t.Errorf("2+3 = %v", got)
	}
	if got := mustD(Sub(NewInt(2), NewInt(3))); got.Int() != -1 {
		t.Errorf("2-3 = %v", got)
	}
	if got := mustD(Mul(NewInt(2), NewFloat(1.5))); got.Float() != 3.0 {
		t.Errorf("2*1.5 = %v", got)
	}
	if got := mustD(Div(NewInt(7), NewInt(2))); got.Float() != 3.5 {
		t.Errorf("7/2 = %v", got)
	}
	if got := mustD(Add(NewString("ab"), NewString("cd"))); got.Str() != "abcd" {
		t.Errorf("'ab'+'cd' = %v", got)
	}
	if got := mustD(Neg(NewInt(5))); got.Int() != -5 {
		t.Errorf("-5 = %v", got)
	}
}

func TestArithNullPropagation(t *testing.T) {
	for _, f := range []func(Datum, Datum) (Datum, error){Add, Sub, Mul, Div} {
		d, err := f(Null, NewInt(1))
		if err != nil || !d.IsNull() {
			t.Errorf("op(NULL, 1) = %v, %v; want NULL", d, err)
		}
		d, err = f(NewInt(1), Null)
		if err != nil || !d.IsNull() {
			t.Errorf("op(1, NULL) = %v, %v; want NULL", d, err)
		}
	}
}

func TestArithErrors(t *testing.T) {
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("division by zero should error")
	}
	if _, err := Add(NewInt(1), NewBool(true)); err == nil {
		t.Error("int + bool should error")
	}
	if _, err := Neg(NewString("x")); err == nil {
		t.Error("negating a string should error")
	}
}

func TestTriBool(t *testing.T) {
	vals := []TriBool{False, True, Unknown}
	for _, a := range vals {
		for _, b := range vals {
			and := a.And(b)
			or := a.Or(b)
			// Kleene logic truth tables.
			switch {
			case a == False || b == False:
				if and != False {
					t.Errorf("%v AND %v = %v", a, b, and)
				}
			case a == Unknown || b == Unknown:
				if and != Unknown {
					t.Errorf("%v AND %v = %v", a, b, and)
				}
			default:
				if and != True {
					t.Errorf("%v AND %v = %v", a, b, and)
				}
			}
			switch {
			case a == True || b == True:
				if or != True {
					t.Errorf("%v OR %v = %v", a, b, or)
				}
			case a == Unknown || b == Unknown:
				if or != Unknown {
					t.Errorf("%v OR %v = %v", a, b, or)
				}
			default:
				if or != False {
					t.Errorf("%v OR %v = %v", a, b, or)
				}
			}
		}
	}
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("NOT truth table")
	}
	if !True.Accept() || False.Accept() || Unknown.Accept() {
		t.Error("Accept: only TRUE passes a filter")
	}
	if True.LNNVL() || !False.LNNVL() || !Unknown.LNNVL() {
		t.Error("LNNVL: TRUE->false, FALSE/UNKNOWN->true")
	}
}

func TestTriBoolDeMorgan(t *testing.T) {
	// Property: NOT(a AND b) == NOT a OR NOT b in Kleene logic.
	vals := []TriBool{False, True, Unknown}
	for _, a := range vals {
		for _, b := range vals {
			if a.And(b).Not() != a.Not().Or(b.Not()) {
				t.Errorf("De Morgan fails for %v, %v", a, b)
			}
		}
	}
}

func TestTriFromDatum(t *testing.T) {
	if TriFromDatum(Null) != Unknown {
		t.Error("NULL -> UNKNOWN")
	}
	if TriFromDatum(NewBool(true)) != True || TriFromDatum(NewBool(false)) != False {
		t.Error("bool mapping")
	}
	if TriFromDatum(NewInt(3)) != True || TriFromDatum(NewInt(0)) != False {
		t.Error("int mapping")
	}
	if True.Datum().Bool() != true || !Unknown.Datum().IsNull() {
		t.Error("Datum round trip")
	}
}

func TestDatumString(t *testing.T) {
	cases := []struct {
		d    Datum
		want string
	}{
		{Null, "NULL"},
		{NewInt(-3), "-3"},
		{NewString("US"), "'US'"},
		{NewBool(true), "TRUE"},
		{NewFloat(2.5), "2.5"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.d.Kind(), got, c.want)
		}
	}
}
