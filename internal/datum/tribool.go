package datum

// TriBool is SQL three-valued logic: TRUE, FALSE, or UNKNOWN (NULL).
type TriBool uint8

// The three truth values.
const (
	False TriBool = iota
	True
	Unknown
)

func (t TriBool) String() string {
	switch t {
	case True:
		return "TRUE"
	case False:
		return "FALSE"
	}
	return "UNKNOWN"
}

// FromBool converts a Go bool to a TriBool.
func FromBool(b bool) TriBool {
	if b {
		return True
	}
	return False
}

// And is three-valued AND.
func (t TriBool) And(o TriBool) TriBool {
	if t == False || o == False {
		return False
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return True
}

// Or is three-valued OR.
func (t TriBool) Or(o TriBool) TriBool {
	if t == True || o == True {
		return True
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return False
}

// Not is three-valued NOT.
func (t TriBool) Not() TriBool {
	switch t {
	case True:
		return False
	case False:
		return True
	}
	return Unknown
}

// Accept reports whether a WHERE/HAVING filter passes: only TRUE accepts.
func (t TriBool) Accept() bool { return t == True }

// LNNVL implements Oracle's LNNVL: TRUE when the condition is FALSE or
// UNKNOWN. It is used by disjunction-into-UNION-ALL expansion to keep
// branches disjoint without changing NULL semantics.
func (t TriBool) LNNVL() bool { return t != True }

// Datum converts the truth value to a Datum (UNKNOWN becomes NULL).
func (t TriBool) Datum() Datum {
	switch t {
	case True:
		return NewBool(true)
	case False:
		return NewBool(false)
	}
	return Null
}

// TriFromDatum interprets a datum as a truth value: NULL is UNKNOWN,
// booleans map directly, and non-zero numbers are TRUE.
func TriFromDatum(d Datum) TriBool {
	switch d.kind {
	case KNull:
		return Unknown
	case KBool, KInt:
		return FromBool(d.i != 0)
	case KFloat:
		return FromBool(d.f != 0)
	}
	return Unknown
}
