package datum

import "fmt"

// Add returns d + o with SQL NULL propagation.
func Add(d, o Datum) (Datum, error) { return arith(d, o, '+') }

// Sub returns d - o with SQL NULL propagation.
func Sub(d, o Datum) (Datum, error) { return arith(d, o, '-') }

// Mul returns d * o with SQL NULL propagation.
func Mul(d, o Datum) (Datum, error) { return arith(d, o, '*') }

// Div returns d / o with SQL NULL propagation. Division always produces a
// float; dividing by zero is an error.
func Div(d, o Datum) (Datum, error) {
	if d.IsNull() || o.IsNull() {
		return Null, nil
	}
	if !d.numeric() || !o.numeric() {
		return Null, fmt.Errorf("datum: non-numeric operand to /: %s, %s", d.kind, o.kind)
	}
	den := o.Float()
	if den == 0 {
		return Null, fmt.Errorf("datum: division by zero")
	}
	return NewFloat(d.Float() / den), nil
}

func arith(d, o Datum, op byte) (Datum, error) {
	if d.IsNull() || o.IsNull() {
		return Null, nil
	}
	if op == '+' && d.kind == KString && o.kind == KString {
		return NewString(d.s + o.s), nil
	}
	if !d.numeric() || !o.numeric() {
		return Null, fmt.Errorf("datum: non-numeric operand to %c: %s, %s", op, d.kind, o.kind)
	}
	if d.kind == KInt && o.kind == KInt {
		switch op {
		case '+':
			return NewInt(d.i + o.i), nil
		case '-':
			return NewInt(d.i - o.i), nil
		case '*':
			return NewInt(d.i * o.i), nil
		}
	}
	a, b := d.Float(), o.Float()
	switch op {
	case '+':
		return NewFloat(a + b), nil
	case '-':
		return NewFloat(a - b), nil
	case '*':
		return NewFloat(a * b), nil
	}
	return Null, fmt.Errorf("datum: unknown arithmetic op %c", op)
}

// Neg returns -d with SQL NULL propagation.
func Neg(d Datum) (Datum, error) {
	switch d.kind {
	case KNull:
		return Null, nil
	case KInt:
		return NewInt(-d.i), nil
	case KFloat:
		return NewFloat(-d.f), nil
	}
	return Null, fmt.Errorf("datum: cannot negate %s", d.kind)
}
