// Package datum implements the typed values that flow through the query
// processor: SQL NULL, 64-bit integers, floats, and strings, together with
// SQL comparison semantics and three-valued logic.
//
// Dates are represented as strings in 'YYYYMMDD' form (as in the paper's
// example predicate j.start_date > '19980101'), which compare correctly
// under lexicographic string comparison.
package datum

import (
	"fmt"
	"strconv"
)

// Kind identifies the runtime type of a Datum.
type Kind uint8

// The supported value kinds.
const (
	KNull Kind = iota
	KInt
	KFloat
	KString
	KBool
)

func (k Kind) String() string {
	switch k {
	case KNull:
		return "NULL"
	case KInt:
		return "INT"
	case KFloat:
		return "FLOAT"
	case KString:
		return "STRING"
	case KBool:
		return "BOOL"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Datum is a single SQL value. The zero value is SQL NULL.
type Datum struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Datum{}

// NewInt returns an integer datum.
func NewInt(v int64) Datum { return Datum{kind: KInt, i: v} }

// NewFloat returns a float datum.
func NewFloat(v float64) Datum { return Datum{kind: KFloat, f: v} }

// NewString returns a string datum.
func NewString(v string) Datum { return Datum{kind: KString, s: v} }

// NewBool returns a boolean datum.
func NewBool(v bool) Datum {
	var i int64
	if v {
		i = 1
	}
	return Datum{kind: KBool, i: i}
}

// Kind reports the datum's kind.
func (d Datum) Kind() Kind { return d.kind }

// IsNull reports whether the datum is SQL NULL.
func (d Datum) IsNull() bool { return d.kind == KNull }

// Int returns the integer value. It panics if the datum is not an integer.
func (d Datum) Int() int64 {
	if d.kind != KInt {
		panic(fmt.Sprintf("datum: Int on %s", d.kind))
	}
	return d.i
}

// Float returns the float value, converting from integer if necessary.
func (d Datum) Float() float64 {
	switch d.kind {
	case KFloat:
		return d.f
	case KInt:
		return float64(d.i)
	}
	panic(fmt.Sprintf("datum: Float on %s", d.kind))
}

// Str returns the string value. It panics if the datum is not a string.
func (d Datum) Str() string {
	if d.kind != KString {
		panic(fmt.Sprintf("datum: Str on %s", d.kind))
	}
	return d.s
}

// Bool returns the boolean value. It panics if the datum is not a bool.
func (d Datum) Bool() bool {
	if d.kind != KBool {
		panic(fmt.Sprintf("datum: Bool on %s", d.kind))
	}
	return d.i != 0
}

// AsInt returns the integer value, or an error naming the actual kind.
// The error-returning twin of Int for values whose kind the caller cannot
// prove statically (anything computed from user SQL).
func (d Datum) AsInt() (int64, error) {
	if d.kind != KInt {
		return 0, fmt.Errorf("datum: want INT, have %s", d.kind)
	}
	return d.i, nil
}

// AsStr returns the string value, or an error naming the actual kind.
func (d Datum) AsStr() (string, error) {
	if d.kind != KString {
		return "", fmt.Errorf("datum: want STRING, have %s", d.kind)
	}
	return d.s, nil
}

// AsBool returns the boolean value, or an error naming the actual kind.
func (d Datum) AsBool() (bool, error) {
	if d.kind != KBool {
		return false, fmt.Errorf("datum: want BOOL, have %s", d.kind)
	}
	return d.i != 0, nil
}

// String renders the datum as it would appear in SQL text.
func (d Datum) String() string {
	switch d.kind {
	case KNull:
		return "NULL"
	case KInt:
		return strconv.FormatInt(d.i, 10)
	case KFloat:
		return strconv.FormatFloat(d.f, 'g', -1, 64)
	case KString:
		return "'" + d.s + "'"
	case KBool:
		if d.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// numeric reports whether the datum is an INT or FLOAT.
func (d Datum) numeric() bool { return d.kind == KInt || d.kind == KFloat }

// Compare orders two non-null datums: -1 if d < o, 0 if equal, +1 if d > o.
// Numeric kinds compare with each other; otherwise kinds must match.
// Comparing a NULL or incompatible kinds returns an error.
func Compare(d, o Datum) (int, error) {
	if d.IsNull() || o.IsNull() {
		return 0, fmt.Errorf("datum: comparison with NULL has no ordering")
	}
	if d.numeric() && o.numeric() {
		if d.kind == KInt && o.kind == KInt {
			switch {
			case d.i < o.i:
				return -1, nil
			case d.i > o.i:
				return 1, nil
			}
			return 0, nil
		}
		a, b := d.Float(), o.Float()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		}
		return 0, nil
	}
	if d.kind != o.kind {
		return 0, fmt.Errorf("datum: cannot compare %s with %s", d.kind, o.kind)
	}
	switch d.kind {
	case KString:
		switch {
		case d.s < o.s:
			return -1, nil
		case d.s > o.s:
			return 1, nil
		}
		return 0, nil
	case KBool:
		switch {
		case d.i < o.i:
			return -1, nil
		case d.i > o.i:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("datum: cannot compare %s values", d.kind)
}

// MustCompare is Compare but panics on error. Intended for internal callers
// that have already validated kinds (e.g. sorting a typed column).
func MustCompare(d, o Datum) int {
	c, err := Compare(d, o)
	if err != nil {
		panic(err)
	}
	return c
}

// SameValue reports whether two datums are identical values, treating NULL
// as equal to NULL. This is the IS NOT DISTINCT FROM / grouping equality,
// used by GROUP BY, DISTINCT and set operations (where NULLs match).
func SameValue(d, o Datum) bool {
	if d.IsNull() || o.IsNull() {
		return d.IsNull() && o.IsNull()
	}
	if d.numeric() && o.numeric() {
		c, _ := Compare(d, o)
		return c == 0
	}
	if d.kind != o.kind {
		return false
	}
	c, err := Compare(d, o)
	return err == nil && c == 0
}

// Key returns a string that uniquely identifies the datum's value within its
// kind, suitable for use as a hash map key in joins and aggregation. NULLs
// map to a distinct key so that SameValue semantics hold for grouping.
func (d Datum) Key() string {
	switch d.kind {
	case KNull:
		return "\x00N"
	case KInt:
		return "\x01" + strconv.FormatInt(d.i, 10)
	case KFloat:
		// Normalize integral floats so 1 and 1.0 group together.
		if d.f == float64(int64(d.f)) {
			return "\x01" + strconv.FormatInt(int64(d.f), 10)
		}
		return "\x02" + strconv.FormatFloat(d.f, 'b', -1, 64)
	case KString:
		return "\x03" + d.s
	case KBool:
		return "\x04" + strconv.FormatInt(d.i, 10)
	}
	return "\x05"
}
