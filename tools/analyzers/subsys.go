// Subsystem-invariant passes. PRs 7–9 added the subsystems with the most
// dangerous implicit invariants — published-version immutability in MVCC
// storage, fsync-before-ack in the WAL, deadline propagation through the
// admission gate, and selection-vector discipline in the batch engine —
// and the four passes in this file machine-check them:
//
//   - snapmut: a published MVCC table version (storage.Table / storage.Index)
//     is immutable; only the allowlisted constructor/commit set may write its
//     fields. A stray mutation is a silent snapshot-isolation break the
//     differential oracle can only catch probabilistically;
//   - ctxflow: inside the serving path (server, exec, cbqt, storage), a
//     function that holds a ctx must pass it on — minting context.Background()
//     / context.TODO() or calling a context-less twin of a *Context API
//     severs the deadline/cancellation chain the overload story depends on;
//   - selvec: batch kernels index rows through the selection vector; a direct
//     Batch.Cols[c][i] outside the allowlisted kernel set reads rows a filter
//     already disqualified (the bug class TestBatchBoundaries exists to
//     catch dynamically);
//   - errdrop: a discarded error on the WAL/fsync/commit path converts
//     durability into data loss — every Sync/Close/append/rotate/commit
//     error in internal/storage must be consumed or justified.
package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// ---- snapmut -----------------------------------------------------------

// versionTypes are the MVCC table-version types of internal/storage whose
// published instances are immutable by design.
var versionTypes = map[string]bool{"Table": true, "Index": true}

// snapmutAllowed is the constructor/commit function set of internal/storage
// that is allowed to write version fields: load-time builders that run
// before a version is published, and the commit path that writes only the
// private next version before the atomic head swap. Extending this list is
// a review decision, not a convenience.
var snapmutAllowed = map[string]bool{
	"NewTable":      true, // load-time constructor, version not yet published
	"Append":        true, // load-time row loader (documented not-serving-safe)
	"BuildIndexes":  true, // load-time index builder
	"buildIndex":    true, // builds a private Index before publication
	"insertInPlace": true, // load-time index maintenance under Append
	"applyOps":      true, // commit path: writes the unpublished next version
}

// isStoragePkg reports whether pkg is this repository's internal/storage.
func isStoragePkg(pkg *types.Package) bool {
	return pkg != nil && strings.HasSuffix(pkg.Path(), "internal/storage")
}

var snapmut = &Analyzer{
	Name: "snapmut",
	Doc:  "forbid writes to published MVCC table-version fields outside the constructor/commit set",
	Run: func(p *Pass) {
		inStorage := isStoragePkg(p.Pkg)
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if inStorage && snapmutAllowed[fd.Name.Name] {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch st := n.(type) {
					case *ast.AssignStmt:
						for _, lhs := range st.Lhs {
							snapmutCheckWrite(p, lhs)
						}
					case *ast.IncDecStmt:
						snapmutCheckWrite(p, st.X)
					}
					return true
				})
			}
		}
	},
}

// snapmutCheckWrite reports lhs when it stores through a field of a version
// type. Element writes (x.Field[i] = v, incl. map stores) are flagged even
// through a value base — the slice/map backing store is shared with the
// published version — while a plain field store through a value copy only
// writes the local copy and is legal (Snapshot.Table stamps its view's ts
// exactly this way).
func snapmutCheckWrite(p *Pass, lhs ast.Expr) {
	expr := ast.Unparen(lhs)
	viaIndex := false
	for {
		switch v := expr.(type) {
		case *ast.IndexExpr:
			viaIndex = true
			expr = ast.Unparen(v.X)
			continue
		case *ast.StarExpr:
			expr = ast.Unparen(v.X)
			continue
		}
		break
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return
	}
	sl, ok := p.Info.Selections[sel]
	if !ok || sl.Kind() != types.FieldVal {
		return
	}
	owner := namedOf(sl.Recv())
	if owner == nil || !versionTypes[owner.Obj().Name()] || !isStoragePkg(owner.Obj().Pkg()) {
		return
	}
	if !viaIndex {
		if _, ptr := sl.Recv().(*types.Pointer); !ptr {
			return // field store through a value copy mutates only the copy
		}
	}
	p.Report(lhs.Pos(), "write to %s.%s outside the MVCC constructor/commit set: published table versions are immutable; mutate an unpublished copy and swap the head", owner.Obj().Name(), sl.Obj().Name())
}

// namedOf strips one level of pointer and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// ---- ctxflow -----------------------------------------------------------

// ctxPackages is the serving path: every deadline set at admission must
// reach the WAL fsync through these packages.
var ctxPackages = pathIn(
	"repro/internal/server",
	"repro/internal/exec",
	"repro/internal/cbqt",
	"repro/internal/storage",
)

var ctxflow = &Analyzer{
	Name:     "ctxflow",
	Doc:      "forbid severing the context chain: fresh root contexts or context-less twins called while a ctx is in scope",
	Packages: ctxPackages,
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ctxflowInspect(p, fd.Body, funcDeclHasCtx(p, fd))
			}
		}
	},
}

// ctxflowInspect walks one function body; hasCtx records whether any
// enclosing function (including via closure capture) has a context
// parameter in scope.
func ctxflowInspect(p *Pass, body *ast.BlockStmt, hasCtx bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			ctxflowInspect(p, v.Body, hasCtx || fieldListHasCtx(p, v.Type.Params))
			return false
		case *ast.CallExpr:
			if hasCtx {
				ctxflowCheckCall(p, v)
			}
		}
		return true
	})
}

func ctxflowCheckCall(p *Pass, call *ast.CallExpr) {
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if sigAcceptsCtx(sig) {
		// Mode A: the callee accepts a context, but the caller mints a
		// fresh root instead of passing the one in scope.
		for _, arg := range call.Args {
			if name := freshCtxCall(p.Info, arg); name != "" {
				p.Report(arg.Pos(), "context.%s() passed to %s while a ctx is in scope: the fresh root severs the deadline/cancellation chain", name, fn.Name())
			}
		}
		return
	}
	// Mode B: the callee takes no context, but a *Context twin exists —
	// calling the context-less form drops the in-scope ctx.
	if strings.HasSuffix(fn.Name(), "Context") || fn.Pkg() == nil {
		return
	}
	if sib := contextSibling(fn, sig); sib != nil {
		p.Report(call.Pos(), "call to %s drops the in-scope ctx: use %s so the deadline propagates", fn.Name(), sib.Name())
	}
}

// contextSibling returns the fn.Name()+"Context" twin (same package for
// functions, same receiver type for methods) when one exists and accepts a
// context, else nil.
func contextSibling(fn *types.Func, sig *types.Signature) *types.Func {
	want := fn.Name() + "Context"
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), want)
		if m, ok := obj.(*types.Func); ok {
			if msig, ok := m.Type().(*types.Signature); ok && sigAcceptsCtx(msig) {
				return m
			}
		}
		return nil
	}
	if obj := fn.Pkg().Scope().Lookup(want); obj != nil {
		if m, ok := obj.(*types.Func); ok {
			if msig, ok := m.Type().(*types.Signature); ok && sigAcceptsCtx(msig) {
				return m
			}
		}
	}
	return nil
}

// freshCtxCall reports "Background" or "TODO" when arg is a direct call to
// that context constructor, else "".
func freshCtxCall(info *types.Info, arg ast.Expr) string {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}

func isCtxType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func sigAcceptsCtx(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isCtxType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func funcDeclHasCtx(p *Pass, fd *ast.FuncDecl) bool {
	return fieldListHasCtx(p, fd.Type.Params)
}

func fieldListHasCtx(p *Pass, params *ast.FieldList) bool {
	if params == nil {
		return false
	}
	for _, field := range params.List {
		if tv, ok := p.Info.Types[field.Type]; ok && isCtxType(tv.Type) {
			return true
		}
	}
	return false
}

// ---- selvec ------------------------------------------------------------

// selvecKernels are the batch-engine kernel functions allowed to index
// Batch.Cols[c][i] directly: each derives i from the selection vector (or
// builds the batch it writes). Keys are "Recv.Method" for methods. As with
// snapmut, extending the set is a review decision.
var selvecKernels = map[string]bool{
	"Batch.Row":                      true,
	"Batch.gather":                   true,
	"Batch.appendRow":                true,
	"batchSeqScanIter.NextBatch":     true,
	"batchIndexScanIter.NextBatch":   true,
	"batchNLJoinIter.emit":           true,
	"batchNLJoinIter.emitLeftPad":    true,
	"batchNLJoinIter.NextBatch":      true,
	"batchHashJoinIter.Open":         true,
	"batchHashJoinIter.onMatch":      true,
	"batchHashJoinIter.emitComb":     true,
	"batchHashJoinIter.emitLeftPad":  true,
	"batchHashJoinIter.emitRightPad": true,
}

var selvec = &Analyzer{
	Name:     "selvec",
	Doc:      "forbid direct Batch.Cols[c][i] row indexing outside allowlisted kernels; go through the selection vector",
	Packages: pathIn("repro/internal/exec"),
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if selvecKernels[funcKey(p, fd)] {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					outer, ok := n.(*ast.IndexExpr)
					if !ok {
						return true
					}
					inner, ok := ast.Unparen(outer.X).(*ast.IndexExpr)
					if !ok {
						return true
					}
					sel, ok := ast.Unparen(inner.X).(*ast.SelectorExpr)
					if !ok {
						return true
					}
					sl, ok := p.Info.Selections[sel]
					if !ok || sl.Kind() != types.FieldVal || sl.Obj().Name() != "Cols" {
						return true
					}
					owner := namedOf(sl.Recv())
					if owner == nil || owner.Obj().Name() != "Batch" || owner.Obj().Pkg() == nil ||
						!strings.HasSuffix(owner.Obj().Pkg().Path(), "internal/exec") {
						return true
					}
					p.Report(outer.Pos(), "direct Batch.Cols[c][i] indexing bypasses the selection vector: use Live/Row (or add the function to the kernel allowlist deliberately)")
					return true
				})
			}
		}
	},
}

// funcKey renders a FuncDecl as "Name" or "Recv.Name" using the checked
// receiver type, matching selvecKernels keys.
func funcKey(p *Pass, fd *ast.FuncDecl) string {
	obj, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return fd.Name.Name
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fd.Name.Name
	}
	if named := namedOf(sig.Recv().Type()); named != nil {
		return named.Obj().Name() + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// ---- errdrop -----------------------------------------------------------

// durabilityCallees are the method/function names on the WAL/fsync/commit
// path whose error results must be consumed: dropping one converts
// durability into data loss (an fsync error after ack is unrecoverable).
var durabilityCallees = map[string]bool{
	"Sync": true, "Close": true, "close": true, "append": true,
	"rotate": true, "commit": true, "Commit": true, "logCommit": true,
	"Truncate": true, "Flush": true,
}

var errdrop = &Analyzer{
	Name:     "errdrop",
	Doc:      "forbid discarding error results on WAL/fsync/commit call paths",
	Packages: pathIn("repro/internal/storage"),
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.ExprStmt:
					errdropCheckCall(p, st.X, "")
				case *ast.GoStmt:
					errdropCheckCall(p, st.Call, "go ")
				case *ast.DeferStmt:
					errdropCheckCall(p, st.Call, "defer ")
				case *ast.AssignStmt:
					if len(st.Rhs) != 1 {
						return true
					}
					for _, l := range st.Lhs {
						if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
							return true // some result is consumed
						}
					}
					errdropCheckCall(p, st.Rhs[0], "")
				}
				return true
			})
		}
	},
}

// errdropCheckCall reports e when it is a durability-path call whose error
// result is being discarded.
func errdropCheckCall(p *Pass, e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeFunc(p.Info, call)
	if fn == nil || !durabilityCallees[fn.Name()] {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named := namedOf(last)
	if named == nil || named.Obj().Name() != "error" || named.Obj().Pkg() != nil {
		return
	}
	p.Report(e.Pos(), "%serror from %s discarded on a durability path: a dropped fsync/commit error converts durability into data loss", how, fn.Name())
}
