package main

import (
	"go/types"
	"strings"
	"testing"
)

// storageFixture is a minimal stand-in for internal/storage's version types:
// the pass matches on (type name, package path suffix), so this compiles
// as repro/internal/storage and exercises every write shape.
const storageFixture = `package storage
type Table struct {
	Rows    []int
	ends    []uint64
	indexes map[string]int
	ts      uint64
}
type Index struct {
	rows []int
}
func NewTable() *Table { // allowlisted constructor: fine
	t := &Table{indexes: map[string]int{}}
	t.Rows = append(t.Rows, 1)
	return t
}
func bad(t *Table, ix *Index) {
	t.Rows = append(t.Rows, 2) // flagged: field store through pointer
	t.ends[0] = 9              // flagged: element write, shared backing array
	t.indexes["i"] = 1         // flagged: map store
	t.ts++                     // flagged: inc through pointer
	ix.rows = nil              // flagged: Index is a version type too
}
func view(t *Table) uint64 {
	v := *t
	v.ts = 7       // value copy: only the copy mutates, fine
	v.Rows[0] = 42 // flagged: the copy shares the rows backing array
	return v.ts
}
func allowed(t *Table) {
	//lint:allow snapmut load-time rebuild before the version is ever published
	t.Rows = append(t.Rows, 3)
}
`

func TestSnapmut(t *testing.T) {
	diags := findings(t, snapmut, "repro/internal/storage", storageFixture, nil)
	wantN(t, diags, 6)
	for _, d := range diags {
		if d.analyzer != "snapmut" {
			t.Errorf("finding from %q, want snapmut", d.analyzer)
		}
	}
}

func TestSnapmutFiresOutsideStorageToo(t *testing.T) {
	// The allowlist is storage-local: a function named Append in another
	// package writing a version field is still a violation.
	_, _, storagePkg, _ := compile(t, "repro/internal/storage", storageFixture, nil)
	deps := map[string]*types.Package{"repro/internal/storage": storagePkg}
	src := `package exec
import "repro/internal/storage"
func Append(t *storage.Table) {
	t.Rows = append(t.Rows, 1) // flagged: not storage's Append
}
`
	wantN(t, findings(t, snapmut, "repro/internal/exec", src, deps), 1)
}

const ctxFixture = `package server
import "context"
func DialContext(ctx context.Context, addr string) error { return nil }
func Dial(addr string) error { // wrapper with no ctx in scope: fine
	return DialContext(context.Background(), addr)
}
type Cl struct{}
func (c *Cl) Exec(q string) error { return nil }
func (c *Cl) ExecContext(ctx context.Context, q string) error { return nil }
func bad(ctx context.Context, c *Cl) error {
	if err := DialContext(context.Background(), "x"); err != nil { // flagged: fresh root
		return err
	}
	_ = DialContext(context.TODO(), "y") // flagged: TODO is a fresh root too
	return c.Exec("q")                   // flagged: drops ctx, ExecContext exists
}
func good(ctx context.Context, c *Cl) error {
	if err := DialContext(ctx, "x"); err != nil {
		return err
	}
	return c.ExecContext(ctx, "q")
}
func closure(ctx context.Context, c *Cl) {
	f := func() { _ = c.Exec("q") } // flagged: ctx in scope via capture
	f()
}
func allowed(ctx context.Context, c *Cl) error {
	//lint:allow ctxflow fire-and-forget audit write must survive request cancellation
	return c.Exec("q")
}
`

func TestCtxflow(t *testing.T) {
	diags := findings(t, ctxflow, "repro/internal/server", ctxFixture, nil)
	wantN(t, diags, 4)
	for _, d := range diags {
		if d.analyzer != "ctxflow" {
			t.Errorf("finding from %q, want ctxflow", d.analyzer)
		}
	}
	// Outside the serving path the same source is not analyzed.
	outside := strings.Replace(ctxFixture, "package server", "package obsv", 1)
	wantN(t, findings(t, ctxflow, "repro/internal/obsv", outside, nil), 0)
}

const batchFixture = `package exec
type Batch struct {
	Cols [][]int
	Sel  []int
	N    int
}
func (b *Batch) Live(k int) int {
	if b.Sel != nil {
		return b.Sel[k]
	}
	return k
}
func (b *Batch) Row(r int) []int { // allowlisted kernel: fine
	out := make([]int, len(b.Cols))
	for c := range b.Cols {
		out[c] = b.Cols[c][r]
	}
	return out
}
func bad(b *Batch) int {
	total := 0
	for k := 0; k < b.N; k++ {
		total += b.Cols[0][k] // flagged: k never went through Sel
	}
	b.Cols[0][0] = 7 // flagged: writes bypass the vector too
	return total
}
func good(b *Batch) int {
	total := 0
	col := b.Cols[0] // single index fetches the column: fine
	for k := 0; k < b.N; k++ {
		total += col[b.Live(k)]
	}
	return total
}
func allowed(b *Batch) int {
	//lint:allow selvec batch is built locally with a nil Sel
	return b.Cols[0][0]
}
`

func TestSelvec(t *testing.T) {
	diags := findings(t, selvec, "repro/internal/exec", batchFixture, nil)
	wantN(t, diags, 2)
	// Gating: internal/storage double-indexing its own types is fine.
	outside := strings.Replace(batchFixture, "package exec", "package storage", 1)
	wantN(t, findings(t, selvec, "repro/internal/storage", outside, nil), 0)
}

const walFixture = `package storage
type seg struct{}
func (s *seg) Sync() error   { return nil }
func (s *seg) Close() error  { return nil }
func (s *seg) Name() string  { return "" }
type wr struct{ seg *seg }
func (w *wr) rotate() error { return nil }
func bad(w *wr) {
	w.seg.Sync()        // flagged: fsync result dropped
	_ = w.seg.Close()   // flagged: blank-assigned
	defer w.seg.Close() // flagged: deferred without a wrapper
	go w.rotate()       // flagged: goroutine swallows the error
}
func good(w *wr) error {
	if err := w.seg.Sync(); err != nil {
		return err
	}
	_ = w.seg.Name() // not a durability callee
	return w.seg.Close()
}
func allowed(w *wr) {
	//lint:allow errdrop read-side segment; close error has no durability consequence
	w.seg.Close()
}
`

func TestErrdrop(t *testing.T) {
	diags := findings(t, errdrop, "repro/internal/storage", walFixture, nil)
	wantN(t, diags, 4)
	// Gating: the same shapes outside internal/storage are not analyzed.
	outside := strings.Replace(walFixture, "package storage", "package exec", 1)
	wantN(t, findings(t, errdrop, "repro/internal/exec", outside, nil), 0)
}

func TestPassCounters(t *testing.T) {
	fset, files, pkg, info := compile(t, "repro/internal/storage", storageFixture, nil)
	_, counters := analyze(fset, files, pkg, info, "repro/internal/storage", []*Analyzer{snapmut})
	tally := counters["snapmut"]
	if tally == nil {
		t.Fatal("no snapmut tally registered")
	}
	if tally.Reported != 6 || tally.Suppressed != 1 {
		t.Fatalf("snapmut tally = %+v, want 6 reported / 1 suppressed", *tally)
	}
}
