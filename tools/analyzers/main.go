// The driver: speaks the `go vet -vettool` unit-checker protocol with only
// the standard library.
//
//	go build -o analyzers.exe repro/tools/analyzers
//	go vet -vettool=$(pwd)/analyzers.exe ./...
//
// Protocol (what cmd/go expects of a vet tool):
//
//   - `analyzers -V=full` prints a version line ending in a content hash,
//     which cmd/go folds into its action cache key;
//   - `analyzers -flags` prints a JSON description of supported flags
//     (none here);
//   - `analyzers <file>.cfg` analyzes one package: the cfg file is JSON
//     describing the package's files, its import map, and the compiled
//     export data of every dependency. The tool must write the VetxOutput
//     facts file (empty here — these passes are fact-free), print findings
//     to stderr as file:line:col lines, and exit 2 when it found anything.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"
)

// vetConfig mirrors the JSON cmd/go writes for vet tools (the unitchecker
// Config). Fields this tool does not consume are still listed so the file
// round-trips cleanly if it ever needs to be re-emitted.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	args := os.Args[1:]
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		printVersion()
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]") // no tool-specific flags
		return
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "usage: analyzers [-V=full | -flags | <file>.cfg]\n")
		os.Exit(1)
	}
	diags, err := run(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyzers: %v\n", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// passCounters tallies per-pass outcomes for one analyzed package: how many
// findings each pass reported and how many a lint:allow suppressed. When
// ANALYZERS_COUNTS names a file, the driver appends one JSON line per
// package so a CI sweep can audit where suppressions concentrate.
type passCounters map[string]*passTally

type passTally struct {
	Reported   int `json:"reported"`
	Suppressed int `json:"suppressed"`
}

func (c passCounters) tally(name string) *passTally {
	t := c[name]
	if t == nil {
		t = &passTally{}
		c[name] = t
	}
	return t
}

// dumpCounters appends the per-pass tallies for pkgPath to the file named
// by ANALYZERS_COUNTS, one JSON object per line. Passes with zero activity
// are omitted.
func dumpCounters(pkgPath string, counters passCounters) {
	path := os.Getenv("ANALYZERS_COUNTS")
	if path == "" || len(counters) == 0 {
		return
	}
	line := struct {
		Package string       `json:"package"`
		Passes  passCounters `json:"passes"`
	}{Package: pkgPath, Passes: counters}
	data, err := json.Marshal(line)
	if err != nil {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "%s\n", data)
}

// printVersion emits the version line cmd/go hashes into its cache key: it
// must change whenever the tool's behavior does, so it hashes the
// executable itself.
func printVersion() {
	name := os.Args[0]
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, h.Sum(nil))
}

// run analyzes the package described by one cfg file.
func run(cfgPath string) ([]diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}

	// The facts file must exist even though these passes export none:
	// cmd/go records it as the action's output.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	// Dependency-only visit: facts written, nothing to report.
	if cfg.VetxOnly {
		return nil, nil
	}

	pkgPath := cfg.ImportPath
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i] // "p [p.test]" variants analyze as p
	}
	applicable := make([]*Analyzer, 0, len(analyzers))
	for _, a := range analyzers {
		if a.Packages == nil || a.Packages(pkgPath) {
			applicable = append(applicable, a)
		}
	}
	if len(applicable) == 0 {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	// Type-check against the export data cmd/go compiled for every import.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tcfg := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {}, // collect via Check's return, keep going
		Sizes:     types.SizesFor("gc", "amd64"),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tcfg.Check(pkgPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %w", pkgPath, err)
	}

	diags, counters := analyze(fset, files, pkg, info, pkgPath, applicable)
	dumpCounters(pkgPath, counters)
	return diags, nil
}

// analyze runs the applicable passes and returns unsuppressed findings in
// deterministic (position, analyzer) order, plus per-pass reported and
// suppressed counters. Test files are parsed and type-checked (the package
// may not check without them) but never reported on: test-local shortcuts
// are not production invariants.
func analyze(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, pkgPath string, passes []*Analyzer) ([]diagnostic, passCounters) {
	allows := map[string]map[int]map[string]bool{}
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		allows[name] = allowDirectives(fset, f)
	}

	counters := passCounters{}
	var diags []diagnostic
	for _, a := range passes {
		p := &Pass{
			Fset:    fset,
			Files:   files,
			Pkg:     pkg,
			Info:    info,
			PkgPath: pkgPath,
			Report: func(pos token.Pos, format string, args ...any) {
				position := fset.Position(pos)
				if strings.HasSuffix(position.Filename, "_test.go") {
					return
				}
				if fileAllows := allows[position.Filename]; fileAllows[position.Line][a.Name] {
					counters.tally(a.Name).Suppressed++
					return
				}
				counters.tally(a.Name).Reported++
				diags = append(diags, diagnostic{
					pos:      position,
					analyzer: a.Name,
					message:  fmt.Sprintf(format, args...),
				})
			},
		}
		a.Run(p)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.analyzer < b.analyzer
	})
	return diags, counters
}
