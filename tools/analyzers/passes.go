// Package main implements this repository's custom static analyzers and a
// stdlib-only driver speaking the `go vet -vettool` protocol (the same
// unit-checker contract golang.org/x/tools implements; hand-rolled here so
// the tool builds with no dependencies outside the standard library).
//
// The passes enforce invariants the optimizer stack's tests rely on but
// cannot express locally:
//
//   - nodeterm: no wall-clock or global-randomness calls in deterministic
//     search paths (qtree, transform, optimizer, cbqt) — reproducible plans
//     and byte-identical traces depend on it;
//   - nakedassert: no single-result type assertions in exec/datum/planner
//     hot paths — a mis-shaped tree must surface as a typed error or a
//     deliberate panic message, not a bare runtime.TypeAssertionError;
//   - atomicmix: a field accessed through sync/atomic is never also read or
//     written plainly in the same package — mixed access is a data race the
//     race detector only catches when the interleaving happens;
//   - obsvreg: obsv registry names are compile-time constants (or built
//     from a constant prefix), so one logical counter cannot be registered
//     under drifting ad-hoc strings.
//
// A finding is suppressed by a `//lint:allow <analyzer> <justification>`
// comment on the flagged line or the line above it; the justification is
// mandatory.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	PkgPath string // import path with any " [pkg.test]" variant suffix stripped
	Report  func(pos token.Pos, format string, args ...any)
}

// Analyzer is one named pass. Packages returns whether the pass applies to
// an import path; nil means every package of this repository.
type Analyzer struct {
	Name     string
	Doc      string
	Packages func(path string) bool
	Run      func(*Pass)
}

// analyzers is the registry the driver runs, in reporting order. The first
// four are the PR 5 optimizer-stack passes; the last four (subsys.go) are
// the subsystem-invariant passes over MVCC storage, the WAL, context flow,
// and the batch engine.
var analyzers = []*Analyzer{
	nodeterm, nakedassert, atomicmix, obsvreg,
	snapmut, ctxflow, selvec, errdrop,
}

func pathIn(paths ...string) func(string) bool {
	return func(p string) bool {
		for _, want := range paths {
			if p == want {
				return true
			}
		}
		return false
	}
}

// ---- nodeterm ----------------------------------------------------------

// detPackages are the deterministic search paths: every function of these
// packages may run under the CBQT state-space search, whose traces and
// chosen plans must be identical run to run and at every parallelism.
var detPackages = pathIn(
	"repro/internal/qtree",
	"repro/internal/transform",
	"repro/internal/optimizer",
	"repro/internal/cbqt",
)

// bannedTime are the wall-clock entry points of package time. Reading the
// clock is allowed only behind a lint:allow with a justification (budget
// deadlines and observability timings qualify; plan decisions do not).
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// allowedRand are the math/rand package-level functions that do NOT touch
// the global shared source: constructing a seeded private source is the
// approved pattern for deterministic randomized search.
var allowedRand = map[string]bool{"New": true, "NewSource": true}

var nodeterm = &Analyzer{
	Name:     "nodeterm",
	Doc:      "forbid wall-clock and global-randomness calls in deterministic search paths",
	Packages: detPackages,
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p.Info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods (t.Sub, rng.Intn) are fine
				}
				switch fn.Pkg().Path() {
				case "time":
					if bannedTime[fn.Name()] {
						p.Report(call.Pos(), "time.%s in a deterministic search path (package %s): plan choice and traces must not depend on the wall clock", fn.Name(), p.PkgPath)
					}
				case "math/rand", "math/rand/v2":
					if !allowedRand[fn.Name()] {
						p.Report(call.Pos(), "%s.%s uses the global random source in a deterministic search path: construct a seeded rand.New(rand.NewSource(seed)) instead", fn.Pkg().Path(), fn.Name())
					}
				}
				return true
			})
		}
	},
}

// calleeFunc resolves a call's target to a *types.Func, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// ---- nakedassert -------------------------------------------------------

var hotPackages = pathIn(
	"repro/internal/exec",
	"repro/internal/datum",
	"repro/internal/optimizer",
	"repro/internal/transform",
	"repro/internal/server",
)

var nakedassert = &Analyzer{
	Name:     "nakedassert",
	Doc:      "forbid single-result type assertions in hot paths; use the comma-ok form",
	Packages: hotPackages,
	Run: func(p *Pass) {
		for _, f := range p.Files {
			// The comma-ok and type-switch forms are legal; collect the
			// assertion expressions they cover, then flag the rest.
			allowed := map[*ast.TypeAssertExpr]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.AssignStmt:
					if len(v.Lhs) == 2 && len(v.Rhs) == 1 {
						if ta, ok := ast.Unparen(v.Rhs[0]).(*ast.TypeAssertExpr); ok {
							allowed[ta] = true
						}
					}
				case *ast.ValueSpec:
					if len(v.Names) == 2 && len(v.Values) == 1 {
						if ta, ok := ast.Unparen(v.Values[0]).(*ast.TypeAssertExpr); ok {
							allowed[ta] = true
						}
					}
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				ta, ok := n.(*ast.TypeAssertExpr)
				if !ok || ta.Type == nil || allowed[ta] {
					return true // Type == nil is x.(type) in a type switch
				}
				p.Report(ta.Pos(), "single-result type assertion in a hot path: use the comma-ok form and handle the mismatch (a mis-shaped tree must not surface as a bare TypeAssertionError)")
				return true
			})
		}
	},
}

// ---- atomicmix ---------------------------------------------------------

var atomicmix = &Analyzer{
	Name: "atomicmix",
	Doc:  "forbid mixing sync/atomic access with plain loads/stores of the same field",
	Run: func(p *Pass) {
		type access struct {
			pos   token.Pos
			plain bool
		}
		// fieldAccesses maps each struct-field object to every selector
		// touching it; atomicArgs marks selectors that are the &-argument
		// of a sync/atomic call.
		fieldAccesses := map[*types.Var][]access{}
		atomicArgs := map[*ast.SelectorExpr]bool{}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND {
						if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
							atomicArgs[sel] = true
						}
					}
				}
				return true
			})
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				sl, ok := p.Info.Selections[sel]
				if !ok || sl.Kind() != types.FieldVal {
					return true
				}
				fd, ok := sl.Obj().(*types.Var)
				if !ok || !fd.IsField() {
					return true
				}
				fieldAccesses[fd] = append(fieldAccesses[fd], access{pos: sel.Pos(), plain: !atomicArgs[sel]})
				return true
			})
		}
		for fd, accs := range fieldAccesses {
			hasAtomic := false
			for _, a := range accs {
				if !a.plain {
					hasAtomic = true
					break
				}
			}
			if !hasAtomic {
				continue
			}
			for _, a := range accs {
				if a.plain {
					p.Report(a.pos, "field %s is accessed with sync/atomic elsewhere in this package; this plain access races with it", fd.Name())
				}
			}
		}
	},
}

// ---- obsvreg -----------------------------------------------------------

// registryMethods are the obsv.Registry entry points whose name argument
// must be const-rooted. CounterValue is a read-side lookup and follows the
// same rule: a typo'd literal silently reads a counter nobody writes.
var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "CounterValue": true,
}

var obsvreg = &Analyzer{
	Name: "obsvreg",
	Doc:  "require obsv registry names to be constants or constant-prefixed expressions",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p.Info, call)
				if fn == nil || !registryMethods[fn.Name()] || len(call.Args) == 0 {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() == nil || !isObsvRegistry(sig.Recv().Type()) {
					return true
				}
				if !constRooted(p.Info, call.Args[0]) {
					p.Report(call.Args[0].Pos(), "obsv registry name is not a declared constant (or a constant-prefixed expression): ad-hoc strings drift and split one logical metric across names")
				}
				return true
			})
		}
	},
}

// isObsvRegistry reports whether t is (a pointer to) obsv.Registry.
func isObsvRegistry(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "obsv" || strings.HasSuffix(path, "/obsv")
}

// constRooted reports whether e is a constant expression, a reference to a
// declared constant, or a concatenation whose leftmost operand is
// const-rooted (the "const prefix + dynamic class" registration pattern).
func constRooted(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return true
	}
	if bin, ok := e.(*ast.BinaryExpr); ok && bin.Op == token.ADD {
		return constRooted(info, bin.X)
	}
	return false
}

// ---- lint:allow suppression -------------------------------------------

// allowDirectives collects `//lint:allow <analyzer> <justification>`
// comments of a file, keyed by the line they apply to (their own line and
// the one below, so the directive can sit above the flagged statement).
func allowDirectives(fset *token.FileSet, f *ast.File) map[int]map[string]bool {
	out := map[int]map[string]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "lint:allow") {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, "lint:allow"))
			if len(fields) < 2 {
				continue // a justification is mandatory; bare allows don't count
			}
			name := fields[0]
			line := fset.Position(c.Pos()).Line
			for _, l := range []int{line, line + 1} {
				if out[l] == nil {
					out[l] = map[string]bool{}
				}
				out[l][name] = true
			}
		}
	}
	return out
}

// diagnostic is one finding, carrying enough to render and to suppress.
type diagnostic struct {
	pos      token.Position
	analyzer string
	message  string
}

func (d diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.pos, d.analyzer, d.message)
}
