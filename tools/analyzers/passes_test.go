package main

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// compile typechecks src as package path, resolving std imports through the
// installed toolchain and "deps" through previously compiled test packages.
func compile(t *testing.T, path, src string, deps map[string]*types.Package) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, strings.ReplaceAll(path, "/", "_")+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	cfg := types.Config{Importer: testImporter{deps: deps}}
	pkg, err := cfg.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	return fset, []*ast.File{f}, pkg, info
}

// testImporter resolves test-local packages first, then the standard
// library via the toolchain's export data.
type testImporter struct{ deps map[string]*types.Package }

func (i testImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.deps[path]; ok {
		return p, nil
	}
	return importer.Default().Import(path)
}

// findings runs one analyzer over src (typechecked as pkgPath) and returns
// the diagnostics that survive lint:allow suppression. The analyzer's
// package gate is applied the same way run() applies it.
func findings(t *testing.T, a *Analyzer, pkgPath, src string, deps map[string]*types.Package) []diagnostic {
	t.Helper()
	fset, files, pkg, info := compile(t, pkgPath, src, deps)
	var applicable []*Analyzer
	if a.Packages == nil || a.Packages(pkgPath) {
		applicable = append(applicable, a)
	}
	diags, _ := analyze(fset, files, pkg, info, pkgPath, applicable)
	return diags
}

func wantN(t *testing.T, diags []diagnostic, n int) {
	t.Helper()
	if len(diags) != n {
		t.Fatalf("got %d finding(s), want %d:\n%v", len(diags), n, diags)
	}
}

func TestNodeterm(t *testing.T) {
	src := `package cbqt
import (
	"math/rand"
	"time"
)
func bad() {
	_ = time.Now()
	time.Sleep(time.Second)
	_ = rand.Intn(5)
}
func good() {
	rng := rand.New(rand.NewSource(1))
	_ = rng.Intn(5)
	var t0 time.Time
	_ = t0.Add(time.Second)
}
func allowed() {
	//lint:allow nodeterm deadline checks are budget features, not plan inputs
	_ = time.Now()
}
`
	diags := findings(t, nodeterm, "repro/internal/cbqt", src, nil)
	wantN(t, diags, 3)
	for _, d := range diags {
		if d.analyzer != "nodeterm" {
			t.Errorf("finding from %q, want nodeterm", d.analyzer)
		}
	}
	// The same source in a non-search package is not a finding.
	wantN(t, findings(t, nodeterm, "repro/internal/obsv", strings.Replace(src, "package cbqt", "package obsv", 1), nil), 0)
}

func TestNodetermAllowNeedsJustification(t *testing.T) {
	src := `package cbqt
import "time"
func f() {
	//lint:allow nodeterm
	_ = time.Now()
}
`
	wantN(t, findings(t, nodeterm, "repro/internal/cbqt", src, nil), 1)
}

func TestNakedAssert(t *testing.T) {
	src := `package exec
func f(x any) int {
	n := x.(int)            // naked: flagged
	if m, ok := x.(int); ok { // comma-ok: fine
		n += m
	}
	switch v := x.(type) { // type switch: fine
	case int:
		n += v
	}
	//lint:allow nakedassert constructed three lines up, cannot fail
	n += x.(int)
	return n
}
`
	diags := findings(t, nakedassert, "repro/internal/exec", src, nil)
	wantN(t, diags, 1)
	if diags[0].pos.Line != 3 {
		t.Errorf("finding at line %d, want 3", diags[0].pos.Line)
	}
	// Hot-path gating: the same source elsewhere passes.
	wantN(t, findings(t, nakedassert, "repro/internal/qtree", strings.Replace(src, "package exec", "package qtree", 1), nil), 0)
}

func TestAtomicMix(t *testing.T) {
	src := `package server
import "sync/atomic"
type s struct {
	n int64
	m int64
}
func f(v *s) int64 {
	atomic.AddInt64(&v.n, 1)
	v.n = 7                    // plain store on an atomic field: flagged
	total := v.n               // plain load on an atomic field: flagged
	v.m = 3                    // m is never atomic: fine
	return total + atomic.LoadInt64(&v.n) + v.m
}
`
	diags := findings(t, atomicmix, "repro/internal/server", src, nil)
	wantN(t, diags, 2)
}

func TestObsvReg(t *testing.T) {
	obsvSrc := `package obsv
type Counter struct{}
func (*Counter) Inc() {}
type Registry struct{}
func (*Registry) Counter(name string) *Counter { return nil }
func (*Registry) CounterValue(name string) int64 { return 0 }
`
	_, _, obsvPkg, _ := compile(t, "repro/internal/obsv", obsvSrc, nil)
	deps := map[string]*types.Package{"repro/internal/obsv": obsvPkg}
	src := `package cbqt
import "repro/internal/obsv"
const MetricStates = "cbqt.states"
const MetricPrefix = "cbqt.deg."
func f(r *obsv.Registry, reason, dynamic string) {
	r.Counter(MetricStates).Inc()        // const: fine
	r.Counter(MetricPrefix + reason).Inc() // const prefix: fine
	r.Counter("literal.name").Inc()      // literal constant: fine
	r.Counter(dynamic).Inc()             // dynamic: flagged
	r.Counter(dynamic + MetricPrefix).Inc() // dynamic root: flagged
	_ = r.CounterValue(dynamic)          // read side too: flagged
}
`
	diags := findings(t, obsvreg, "repro/internal/cbqt", src, deps)
	wantN(t, diags, 3)
}

func TestTestFilesAreNotReported(t *testing.T) {
	src := `package exec
func f(x any) int { return x.(int) }
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "exec_test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	cfg := types.Config{}
	pkg, err := cfg.Check("repro/internal/exec", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, _ := analyze(fset, []*ast.File{f}, pkg, info, "repro/internal/exec", []*Analyzer{nakedassert})
	wantN(t, diags, 0)
}

func TestDiagnosticsAreOrdered(t *testing.T) {
	src := `package exec
func f(x any) (int, int) { return x.(int), x.(int) }
func g(x any) int { return x.(int) }
`
	diags := findings(t, nakedassert, "repro/internal/exec", src, nil)
	wantN(t, diags, 3)
	for i := 1; i < len(diags); i++ {
		prev, cur := diags[i-1].pos, diags[i].pos
		if cur.Line < prev.Line || (cur.Line == prev.Line && cur.Column < prev.Column) {
			t.Fatalf("diagnostics out of order: %v before %v", prev, cur)
		}
	}
}
