module repro/tools/analyzers

go 1.22
