package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// dirtyModule seeds one violation per analyzer across a throwaway module
// whose package paths land inside each pass's gated set. Keyed by relative
// file path.
var dirtyModule = map[string]string{
	"internal/cbqt/tick.go": `package cbqt

import (
	"context"
	"time"
)

func Tick() time.Time { return time.Now() } // nodeterm

func run(ctx context.Context) {}

func Drop(ctx context.Context) { run(context.Background()) } // ctxflow
`,
	"internal/exec/batch.go": `package exec

type Batch struct {
	Cols [][]int
	Sel  []int
}

func First(b *Batch) int { return b.Cols[0][0] } // selvec

func Shape(x any) int { return x.(int) } // nakedassert
`,
	"internal/storage/store.go": `package storage

import "sync/atomic"

type Table struct {
	Rows []int
}

type seg struct{}

func (s *seg) Sync() error { return nil }

type store struct {
	n   int64
	seg *seg
}

func (st *store) bump() {
	atomic.AddInt64(&st.n, 1)
	st.n = 0 // atomicmix
}

func Grow(t *Table, s *seg) {
	t.Rows = append(t.Rows, 1) // snapmut
	s.Sync()                   // errdrop
}
`,
	"internal/obsv/obsv.go": `package obsv

type Counter struct{}

func (*Counter) Inc() {}

type Registry struct{}

func (*Registry) Counter(name string) *Counter { return nil }
`,
	"internal/server/metrics.go": `package server

import "repro/internal/obsv"

func Register(r *obsv.Registry, dynamic string) {
	r.Counter(dynamic).Inc() // obsvreg
}
`,
}

// cleanModule is the same module with every violation repaired.
var cleanModule = map[string]string{
	"internal/cbqt/tick.go": `package cbqt

import "context"

func Tick() int { return 42 }

func run(ctx context.Context) {}

func Drop(ctx context.Context) { run(ctx) }
`,
	"internal/exec/batch.go": `package exec

type Batch struct {
	Cols [][]int
	Sel  []int
}

func First(b *Batch) []int { return b.Cols[0] }

func Shape(x any) int {
	n, _ := x.(int)
	return n
}
`,
	"internal/storage/store.go": `package storage

import "sync/atomic"

type Table struct {
	Rows []int
}

type seg struct{}

func (s *seg) Sync() error { return nil }

type store struct {
	n   int64
	seg *seg
}

func (st *store) bump() {
	atomic.AddInt64(&st.n, 1)
	atomic.StoreInt64(&st.n, 0)
}

func Grow(t *Table, s *seg) error {
	_ = t
	return s.Sync()
}
`,
	"internal/obsv/obsv.go": dirtyModule["internal/obsv/obsv.go"],
	"internal/server/metrics.go": `package server

import "repro/internal/obsv"

const metricName = "server.registered"

func Register(r *obsv.Registry, dynamic string) {
	r.Counter(metricName).Inc()
}
`,
}

var allPasses = []string{
	"nodeterm", "nakedassert", "atomicmix", "obsvreg",
	"snapmut", "ctxflow", "selvec", "errdrop",
}

// TestVetToolEndToEnd builds the analyzer binary and runs it through the
// real `go vet -vettool` protocol against a throwaway module seeded with
// one violation per pass, checking that all eight fire and that the
// repaired module sweeps clean.
func TestVetToolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go binary not found: %v", err)
	}

	tool := filepath.Join(t.TempDir(), "analyzers.exe")
	build := exec.Command(goBin, "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}

	mod := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		path := filepath.Join(mod, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// The module path makes each fixture package resolve inside the
	// corresponding pass's gated repro/internal/... set.
	write("go.mod", "module repro\n\ngo 1.22\n")
	for name, src := range dirtyModule {
		write(name, src)
	}

	vet := func() (string, error) {
		cmd := exec.Command(goBin, "vet", "-vettool="+tool, "./...")
		cmd.Dir = mod
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	out, err := vet()
	if err == nil {
		t.Fatalf("go vet passed on seeded violations; output:\n%s", out)
	}
	for _, pass := range allPasses {
		if !strings.Contains(out, pass+":") {
			t.Errorf("pass %s did not fire; go vet output:\n%s", pass, out)
		}
	}

	for name, src := range cleanModule {
		write(name, src)
	}
	if out, err := vet(); err != nil {
		t.Fatalf("go vet failed on clean source: %v\n%s", err, out)
	}
}
