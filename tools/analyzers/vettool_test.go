package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetToolEndToEnd builds the analyzer binary and runs it through the
// real `go vet -vettool` protocol against a throwaway module containing a
// seeded violation, checking both the failing and the clean paths.
func TestVetToolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go binary not found: %v", err)
	}

	tool := filepath.Join(t.TempDir(), "analyzers.exe")
	build := exec.Command(goBin, "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}

	mod := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(mod, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module repro\n\ngo 1.24\n")
	// The package path puts this file inside nodeterm's gated set.
	if err := os.MkdirAll(filepath.Join(mod, "internal", "cbqt"), 0o755); err != nil {
		t.Fatal(err)
	}
	dirty := `package cbqt

import "time"

func Tick() time.Time { return time.Now() }
`
	if err := os.WriteFile(filepath.Join(mod, "internal", "cbqt", "tick.go"), []byte(dirty), 0o644); err != nil {
		t.Fatal(err)
	}

	vet := func() (string, error) {
		cmd := exec.Command(goBin, "vet", "-vettool="+tool, "./...")
		cmd.Dir = mod
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	out, err := vet()
	if err == nil {
		t.Fatalf("go vet passed on a seeded violation; output:\n%s", out)
	}
	if !strings.Contains(out, "nodeterm") || !strings.Contains(out, "time.Now") {
		t.Fatalf("diagnostic missing from go vet output:\n%s", out)
	}

	clean := `package cbqt

func Tick() int { return 42 }
`
	if err := os.WriteFile(filepath.Join(mod, "internal", "cbqt", "tick.go"), []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := vet(); err != nil {
		t.Fatalf("go vet failed on clean source: %v\n%s", err, out)
	}
}
