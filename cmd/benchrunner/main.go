// Command benchrunner regenerates the paper's evaluation results: Figures
// 2, 3 and 4 (relative improvement of cost-based transformation as a
// function of the top N% most expensive queries), the Section 4.3 group-by
// placement experiment, and Tables 1 and 2.
//
// Usage:
//
//	benchrunner -exp all|fig2|fig3|fig4|gbp|table1|table2|par|vec|memo|server|overload|write [-n 12] [-repeats 3] [-seed 1] [-small] [-parallel 0]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/cbqt"
	"repro/internal/faultinject"
	"repro/internal/obsv"
	"repro/internal/storage"
	"repro/internal/testkit"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig2, fig3, fig4, gbp, table1, table2, par, vec, memo, server, overload, write")
	n := flag.Int("n", 12, "queries per workload class")
	serverOps := flag.Int("server-ops", 64, "executes per session in the server experiment")
	maxInflight := flag.Int("max-inflight", 4, "admission slots in the overload experiment")
	point := flag.Duration("point", 2*time.Second, "measurement window per offered-load point in the overload experiment")
	writeCommits := flag.Int("write-commits", 2000, "sustained commits per mode in the write experiment")
	writeOut := flag.String("write-out", "BENCH_write.json", "machine-readable output of the write experiment")
	overloadDelay := flag.Duration("overload-delay", 10*time.Millisecond,
		"simulated optimizer service time per query in the overload experiment; keeps the admission gate, not the CPU, the bottleneck on small machines (0 = pure CPU)")
	repeats := flag.Int("repeats", 3, "execution repetitions per query (min taken)")
	seed := flag.Int64("seed", 1, "data generation seed")
	small := flag.Bool("small", false, "use the small data sizes (quick smoke run)")
	parallel := flag.Int("parallel", 0, "CBQT state-evaluation workers for the figure experiments (0 = cbqt default)")
	timeout := flag.Duration("timeout", 0, "per-query optimization deadline for the figure experiments (0 = none)")
	metrics := flag.Bool("metrics", false, "dump the optimizer metrics delta after each experiment")
	flag.Parse()
	bench.Parallelism = *parallel
	bench.Budget = cbqt.Budget{Timeout: *timeout}
	var reg *obsv.Registry
	if *metrics {
		reg = obsv.NewRegistry()
		bench.Metrics = reg
	}

	// Interrupt cancels the running experiment: searches degrade to their
	// best plan so far and the next query execution aborts.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Println("building database...")
	start := time.Now()
	var db *storage.DB
	if *small {
		db = testkit.NewDB(testkit.SmallSizes(), *seed)
	} else {
		db = bench.NewBenchDB(*seed)
	}
	fmt.Printf("database ready in %s\n\n", time.Since(start).Round(time.Millisecond))

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		var before obsv.Snapshot
		if reg != nil {
			before = reg.Snapshot()
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if reg != nil {
			fmt.Printf("--- %s metrics ---\n%s\n", name, reg.Snapshot().Sub(before).Dump())
		}
	}

	run("fig2", func() error {
		r, err := bench.Figure2(ctx, db, *n, *repeats)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	run("fig3", func() error {
		r, err := bench.Figure3(ctx, db, *n, *repeats)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	run("fig4", func() error {
		r, err := bench.Figure4(ctx, db, *n, *repeats)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	run("gbp", func() error {
		r, err := bench.GroupByPlacementExp(ctx, db, *n, *repeats)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	run("table1", func() error {
		r, err := bench.Table1(db)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable1(r))
		return nil
	})
	run("table2", func() error {
		rows, err := bench.Table2(db)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable2(rows))
		return nil
	})
	run("par", func() error {
		levels := []int{1, 2, 4}
		if p := runtime.GOMAXPROCS(0); p > 4 {
			levels = append(levels, p)
		}
		rows, err := bench.ParallelSearch(db, levels)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatParallelSearch(rows))
		return nil
	})
	run("vec", func() error {
		rows, err := bench.Vec(ctx, db, *repeats)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatVec(rows))
		return nil
	})
	run("memo", func() error {
		r, err := bench.Memo(db)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatMemo(r))
		return nil
	})
	run("server", func() error {
		r, err := bench.ServerThroughput(ctx, db, []int{1, 4, 16}, *serverOps, *seed)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	run("write", func() error {
		cfg := bench.WriteConfig{Commits: *writeCommits}
		if *small {
			cfg.Commits = 200
			cfg.MixedDuration = 300 * time.Millisecond
		}
		rows, err := bench.Write(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatWrite(rows))
		if *writeOut != "" {
			if err := bench.WriteJSON(rows, *writeOut); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *writeOut)
		}
		return nil
	})
	run("overload", func() error {
		opts := cbqt.DefaultOptions()
		opts.Parallelism = 1
		if *overloadDelay > 0 {
			opts.Faults = faultinject.New(faultinject.Fault{
				Site: "heuristics", Kind: faultinject.KindDelay, Delay: *overloadDelay,
			})
		}
		r, err := bench.Overload(ctx, bench.OverloadConfig{
			DB: db, Opts: opts, MaxInflight: *maxInflight, PointDuration: *point, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
}
