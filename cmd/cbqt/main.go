// Command cbqt is an interactive front end for the cost-based query
// transformation engine: it parses a query against the built-in HR/OE
// demo schema, runs heuristic and cost-based transformation, and prints
// the transformed SQL, the physical plan with cost annotations, the
// state-space statistics, and optionally the query results.
//
// Usage:
//
//	cbqt [flags] "SELECT ..."     run one query
//	cbqt [flags]                  read queries from stdin (semicolon-terminated)
//
// With -connect the command becomes a network client for a cbqtd daemon:
// the query (with optional -bind name=value parameters) is prepared,
// executed and fetched over the wire protocol instead of in-process.
//
//	cbqt -connect 127.0.0.1:7654 -bind d=50 "SELECT ... WHERE x = :d"
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cbqt"
	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/obsv"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/storage"
	"repro/internal/testkit"
	"repro/internal/transform"
)

// runConfig bundles the per-query output options.
type runConfig struct {
	run     bool
	analyze bool
	metrics bool
	maxRows int
	reg     *obsv.Registry
}

func main() {
	size := flag.String("size", "small", "demo data size: small or medium")
	seed := flag.Int64("seed", 1, "data generation seed")
	strategy := flag.String("strategy", "auto", "state-space search: auto, exhaustive, iterative, linear, two-pass")
	mode := flag.String("mode", "cost", "cost-based transformations: cost, heuristic, off")
	run := flag.Bool("run", true, "execute the plan and print rows")
	maxRows := flag.Int("max-rows", 20, "maximum result rows to print")
	trace := flag.Bool("trace", false, "print the search trace as a tree and as JSONL events")
	analyze := flag.Bool("analyze", false, "execute the plan with per-operator runtime counters (EXPLAIN ANALYZE)")
	metrics := flag.Bool("metrics", false, "dump the cumulative metrics registry after each query")
	parallel := flag.Int("parallel", 0, "state-evaluation workers: 0 = GOMAXPROCS, 1 = sequential search")
	timeout := flag.Duration("timeout", 0, "per-query optimization deadline (0 = none); on expiry the best plan found so far is kept")
	maxStates := flag.Int("max-states", 0, "cap on transformation states evaluated per query (0 = unlimited)")
	maxMem := flag.Int64("max-mem", 0, "approximate memory budget in bytes for copied trees and the cost cache (0 = unlimited)")
	faults := flag.String("faults", "", "comma-separated fault injections, e.g. 'panic@apply:GBP,error@state:Unnest#3,delay(2ms)@state:*'")
	chk := flag.Bool("check", true, "statically verify every transformation state and the final plan; violations quarantine the offending rule")
	connect := flag.String("connect", "", "run as a client of the cbqtd daemon at this address")
	deadline := flag.Duration("deadline", 0, "client mode: per-query deadline, propagated to the server so it stops optimizing and executing on expiry (0 = none)")
	retries := flag.Int("retries", 1, "client mode: attempts per query; retryable failures (OVERLOADED, connection reset) back off and retry (1 = no retries)")
	var binds bindFlags
	flag.Var(&binds, "bind", "bind parameter as name=value (repeatable; value parsed as int, float, then string)")
	flag.Parse()

	if *connect != "" {
		runRemote(*connect, *strategy, *timeout, *maxStates, *chk, binds, *maxRows, *deadline, *retries)
		return
	}

	var db *storage.DB
	switch *size {
	case "small":
		db = testkit.NewDB(testkit.SmallSizes(), *seed)
	case "medium":
		db = testkit.NewDB(testkit.MediumSizes(), *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown size %q\n", *size)
		os.Exit(2)
	}

	reg := obsv.NewRegistry()
	opts := cbqt.DefaultOptions()
	opts.Trace = *trace
	opts.Metrics = reg
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "-parallel must be >= 0\n")
		os.Exit(2)
	}
	opts.Parallelism = *parallel
	opts.Check = *chk
	opts.Budget = cbqt.Budget{Timeout: *timeout, MaxStates: *maxStates, MaxMemBytes: *maxMem}
	if *faults != "" {
		fs, err := faultinject.Parse(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -faults: %v\n", err)
			os.Exit(2)
		}
		fs.Metrics = reg
		opts.Faults = fs
	}
	switch *strategy {
	case "auto":
		opts.Strategy = cbqt.StrategyAuto
	case "exhaustive":
		opts.Strategy = cbqt.StrategyExhaustive
	case "iterative":
		opts.Strategy = cbqt.StrategyIterative
	case "linear":
		opts.Strategy = cbqt.StrategyLinear
	case "two-pass":
		opts.Strategy = cbqt.StrategyTwoPass
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	switch *mode {
	case "cost":
	case "heuristic", "off":
		m := cbqt.RuleHeuristic
		if *mode == "off" {
			m = cbqt.RuleOff
		}
		opts.RuleModes = map[string]cbqt.RuleMode{}
		for _, r := range transform.CostBasedRules() {
			opts.RuleModes[r.Name()] = m
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	cfg := runConfig{run: *run, analyze: *analyze, metrics: *metrics, maxRows: *maxRows, reg: reg}
	if flag.NArg() > 0 {
		runQuery(db, strings.Join(flag.Args(), " "), opts, cfg)
		return
	}

	// REPL over stdin.
	fmt.Println("cbqt demo shell — terminate queries with ';' (schema: employees,")
	fmt.Println("departments, locations, job_history, jobs, sales, accounts)")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("cbqt> ")
	for scanner.Scan() {
		line := scanner.Text()
		if idx := strings.Index(line, ";"); idx >= 0 {
			buf.WriteString(line[:idx])
			sql := strings.TrimSpace(buf.String())
			buf.Reset()
			if sql != "" {
				runQuery(db, sql, opts, cfg)
			}
			fmt.Print("cbqt> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
	}
}

func runQuery(db *storage.DB, sql string, opts cbqt.Options, cfg runConfig) {
	q, err := qtree.BindSQL(sql, db.Catalog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	o := &cbqt.Optimizer{Cat: db.Catalog, Opts: opts}
	start := time.Now()
	res, err := o.Optimize(q)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optimize error: %v\n", err)
		return
	}
	fmt.Printf("\n-- transformed (%s, %d states, %d blocks, %d annotation hits) --\n",
		time.Since(start).Round(10*time.Microsecond),
		res.Stats.StatesEvaluated, res.Stats.BlocksOptimized, res.Stats.AnnotationHits)
	if res.Stats.CacheHits+res.Stats.CacheMisses > 0 {
		fmt.Printf("-- cost cache: %d hits, %d misses, %d evictions --\n",
			res.Stats.CacheHits, res.Stats.CacheMisses, res.Stats.CacheEvictions)
	}
	if res.Stats.Degraded != cbqt.DegradeNone {
		fmt.Printf("-- degraded: %s (best plan found within budget) --\n", res.Stats.Degraded)
	}
	for _, te := range res.Stats.TransformErrors {
		fmt.Printf("-- transformation fault: %v --\n", te)
	}
	if len(res.Stats.QuarantinedRules) > 0 {
		fmt.Printf("-- quarantined rules: %s --\n", strings.Join(res.Stats.QuarantinedRules, ", "))
	}
	if len(res.Stats.Events) > 0 {
		fmt.Println("-- search trace --")
		fmt.Print(obsv.RenderTree(res.Stats.Events))
		fmt.Println("-- search trace (jsonl) --")
		fmt.Print(obsv.MarshalJSONL(res.Stats.Events))
	}
	fmt.Println(res.Query.SQL())
	if cfg.run && cfg.analyze {
		start = time.Now()
		r, rs, err := exec.RunAnalyze(context.Background(), db, res.Plan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "exec error: %v\n", err)
			return
		}
		fmt.Println("\n-- plan (analyzed) --")
		fmt.Print(exec.ExplainAnalyze(res.Plan, rs, true))
		printRows(r, start, cfg.maxRows)
	} else {
		fmt.Println("\n-- plan --")
		fmt.Print(optimizer.Explain(res.Plan))
		if cfg.run {
			start = time.Now()
			r, err := exec.Run(db, res.Plan)
			if err != nil {
				fmt.Fprintf(os.Stderr, "exec error: %v\n", err)
				return
			}
			printRows(r, start, cfg.maxRows)
		}
	}
	if cfg.metrics {
		fmt.Println("-- metrics --")
		fmt.Print(cfg.reg.Dump())
	}
}

func printRows(r *exec.Result, start time.Time, maxRows int) {
	fmt.Printf("\n-- %d rows in %s --\n", len(r.Rows), time.Since(start).Round(10*time.Microsecond))
	for i, row := range r.Rows {
		if i >= maxRows {
			fmt.Printf("  ... (%d more)\n", len(r.Rows)-maxRows)
			break
		}
		parts := make([]string, len(row))
		for j, d := range row {
			parts[j] = d.String()
		}
		fmt.Printf("  %s\n", strings.Join(parts, " | "))
	}
	fmt.Println()
}
