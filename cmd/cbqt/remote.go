package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/datum"
	"repro/internal/server"
)

// bindFlags accumulates repeated -bind name=value flags.
type bindFlags []server.BindValue

func (b *bindFlags) String() string { return fmt.Sprintf("%d binds", len(*b)) }

func (b *bindFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", s)
	}
	*b = append(*b, server.Named(name, parseDatum(val)))
	return nil
}

// parseDatum guesses the SQL type of a command-line value: int, then
// float, then the literal NULL, then string.
func parseDatum(s string) datum.Datum {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return datum.NewInt(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return datum.NewFloat(f)
	}
	if strings.EqualFold(s, "null") {
		return datum.Null
	}
	return datum.NewString(s)
}

// runRemote executes queries against a cbqtd daemon instead of in-process.
// deadline bounds each query on the server (it rides the wire into the
// optimizer's budget and the executor); retries > 1 enables the client's
// backoff-and-retry of retryable failures like OVERLOADED.
func runRemote(addr, strategy string, timeout time.Duration, maxStates int, chk bool, binds []server.BindValue, maxRows int, deadline time.Duration, retries int) {
	retry := server.RetryPolicy{}
	if retries > 1 {
		retry = server.DefaultRetryPolicy()
		retry.MaxAttempts = retries
	}
	cli, err := server.DialWith(addr, server.DialOptions{
		Session: &server.SessionOptions{
			Strategy:  strategy,
			TimeoutMS: timeout.Milliseconds(),
			MaxStates: maxStates,
			Check:     &chk,
		},
		Retry:       retry,
		CallTimeout: deadline,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "connect %s: %v\n", addr, err)
		os.Exit(1)
	}
	defer cli.Close()

	if flag.NArg() > 0 {
		remoteQuery(cli, strings.Join(flag.Args(), " "), binds, maxRows)
		return
	}

	// REPL over stdin, queries terminated with ';'. Binds from the command
	// line apply to every query (parameters they don't name just error).
	fmt.Printf("cbqt connected to %s — terminate queries with ';'\n", addr)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("cbqt> ")
	for scanner.Scan() {
		line := scanner.Text()
		if idx := strings.Index(line, ";"); idx >= 0 {
			buf.WriteString(line[:idx])
			sql := strings.TrimSpace(buf.String())
			buf.Reset()
			if sql != "" {
				remoteQuery(cli, sql, binds, maxRows)
			}
			fmt.Print("cbqt> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
	}
}

func remoteQuery(cli *server.Client, sql string, binds []server.BindValue, maxRows int) {
	stmt, err := cli.Prepare(sql)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	defer stmt.Close()
	start := time.Now()
	if err := stmt.Execute(binds...); err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	source := "optimized"
	if stmt.Cached {
		source = "shared plan cache"
	}
	fmt.Printf("\n-- transformed (%s, %s) --\n%s\n", time.Since(start).Round(10*time.Microsecond), source, stmt.SQL)
	if kw := strings.ToUpper(strings.Fields(sql)[0]); kw == "INSERT" || kw == "UPDATE" || kw == "DELETE" {
		fmt.Printf("\n-- %d row(s) affected --\n\n", stmt.Affected)
		return
	}
	rows, err := stmt.FetchAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fetch error: %v\n", err)
		return
	}
	fmt.Printf("\n-- %d rows --\n", len(rows))
	for i, row := range rows {
		if i >= maxRows {
			fmt.Printf("  ... (%d more)\n", len(rows)-maxRows)
			break
		}
		parts := make([]string, len(row))
		for j, d := range row {
			parts[j] = d.String()
		}
		fmt.Printf("  %s\n", strings.Join(parts, " | "))
	}
	fmt.Println()
}
