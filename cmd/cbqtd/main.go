// Command cbqtd is the CBQT SQL server daemon: it loads the built-in
// HR/OE demo schema, listens on a TCP address, and serves concurrent
// sessions over the length-prefixed wire protocol (see internal/server).
// Sessions share one plan cache, so a parameterized query is optimized
// once and executed everywhere; ANALYZE from any session invalidates the
// affected plans.
//
// Usage:
//
//	cbqtd -addr :7654 -size medium
//	cbqtd -addr :7654 -store disk -data-dir /var/lib/cbqt
//
// With -store disk every committed write is logged to a segmented WAL
// under -data-dir and fsynced before the commit is acknowledged; on
// restart the daemon replays the log and serves the recovered state (the
// demo schema seeds the directory only on first start). Stop with
// SIGINT/SIGTERM: the daemon drains gracefully — open cursors may be
// fetched to completion; new statements are refused.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/cbqt"
	"repro/internal/obsv"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/testkit"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7654", "TCP listen address")
	size := flag.String("size", "small", "demo data size: small or medium")
	seed := flag.Int64("seed", 1, "data generation seed")
	store := flag.String("store", "mem", "storage engine: mem (volatile) or disk (WAL-backed, durable)")
	dataDir := flag.String("data-dir", "", "disk engine data directory (required with -store disk)")
	strategy := flag.String("strategy", "auto", "default state-space search: auto, exhaustive, iterative, linear, two-pass")
	cacheOff := flag.Bool("cache-off", false, "disable the shared plan cache (every execute optimizes)")
	chk := flag.Bool("check", false, "statically verify every transformation state and plan served (sessions can override per-statement)")
	cacheEntries := flag.Int("cache-entries", 0, "plan cache bound (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for sessions to finish")
	metricsEvery := flag.Duration("metrics-every", 0, "periodically log the metrics registry (0 = never)")
	maxInflight := flag.Int("max-inflight", 0, "admission control: concurrent optimize+execute spans (0 = unbounded)")
	maxQueue := flag.Int("max-queue", 0, "admission control: waiters allowed when all inflight slots are busy")
	queueWait := flag.Duration("queue-wait", 0, "admission control: max time a request may queue before it is shed (0 = 1s default)")
	memHigh := flag.Int64("mem-high-water", 0, "shed new optimizations when estimated optimizer memory would exceed this many bytes (0 = off)")
	idleTimeout := flag.Duration("idle-timeout", 0, "reap sessions idle longer than this (0 = never; clients ping to stay alive)")
	writeTimeout := flag.Duration("write-timeout", 0, "sever sessions whose peer stops reading responses for this long (0 = never)")
	flag.Parse()

	var seedDB *storage.DB
	switch *size {
	case "small":
		seedDB = testkit.NewDB(testkit.SmallSizes(), *seed)
	case "medium":
		seedDB = testkit.NewDB(testkit.MediumSizes(), *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown size %q\n", *size)
		os.Exit(2)
	}

	var db *storage.DB
	switch *store {
	case "mem":
		db = seedDB
	case "disk":
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "-store disk requires -data-dir")
			os.Exit(2)
		}
		cat := catalog.New()
		eng, err := storage.OpenDiskEngine(*dataDir, cat)
		if err != nil {
			log.Fatalf("cbqtd: open disk store: %v", err)
		}
		db = storage.NewDBWithEngine(cat, eng)
		if len(cat.Tables()) == 0 {
			// Fresh directory: seed the demo dataset through the WAL so the
			// first start is durable too.
			log.Printf("cbqtd: seeding %s demo data into %s", *size, *dataDir)
			if err := storage.Mirror(seedDB, db); err != nil {
				log.Fatalf("cbqtd: seed disk store: %v", err)
			}
		} else {
			log.Printf("cbqtd: recovered %d table(s) from %s", len(cat.Tables()), *dataDir)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown store %q\n", *store)
		os.Exit(2)
	}

	opts := cbqt.DefaultOptions()
	opts.Check = *chk
	switch *strategy {
	case "auto":
		opts.Strategy = cbqt.StrategyAuto
	case "exhaustive":
		opts.Strategy = cbqt.StrategyExhaustive
	case "iterative":
		opts.Strategy = cbqt.StrategyIterative
	case "linear":
		opts.Strategy = cbqt.StrategyLinear
	case "two-pass":
		opts.Strategy = cbqt.StrategyTwoPass
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	reg := obsv.NewRegistry()
	db.Metrics(reg) // storage.mvcc.* / storage.wal.* counters
	srv := server.New(server.Config{
		DB:              db,
		Opts:            opts,
		Registry:        reg,
		CacheOff:        *cacheOff,
		CacheMaxEntries: *cacheEntries,

		MaxInflight:       *maxInflight,
		MaxQueue:          *maxQueue,
		QueueWait:         *queueWait,
		MemHighWaterBytes: *memHigh,
		IdleTimeout:       *idleTimeout,
		WriteTimeout:      *writeTimeout,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("cbqtd: listen: %v", err)
	}
	log.Printf("cbqtd: serving %s data on %s (store %s, cache %s)", *size, l.Addr(), *store, onOff(!*cacheOff))

	if *metricsEvery > 0 {
		go func() {
			for range time.Tick(*metricsEvery) {
				log.Printf("cbqtd: metrics\n%s", reg.Dump())
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("cbqtd: draining (timeout %s)", *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("cbqtd: %v", err)
		}
	}()

	if err := srv.Serve(l); err != nil {
		log.Fatalf("cbqtd: serve: %v", err)
	}
	log.Printf("cbqtd: drained; final metrics\n%s", reg.Dump())
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
