// Quickstart: build a database, run a query through cost-based query
// transformation, and inspect what the optimizer did.
package main

import (
	"fmt"

	"repro/internal/cbqt"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/testkit"
)

func main() {
	// A small HR database: employees, departments, locations, job_history,
	// jobs, sales, accounts — loaded, indexed and analyzed.
	db := testkit.NewDB(testkit.SmallSizes(), 1)

	// The paper's Q1: employees earning above their department average, in
	// US departments. Both subqueries are candidates for cost-based
	// unnesting.
	sql := `
SELECT e1.employee_name, j.job_title
FROM employees e1, job_history j
WHERE e1.emp_id = j.emp_id AND
      j.start_date > '19980101' AND
      e1.salary > (SELECT AVG(e2.salary) FROM employees e2
                   WHERE e2.dept_id = e1.dept_id) AND
      e1.dept_id IN (SELECT d.dept_id FROM departments d, locations l
                     WHERE d.loc_id = l.loc_id AND l.country_id = 'US')`

	// Parse and bind.
	q, err := qtree.BindSQL(sql, db.Catalog)
	if err != nil {
		panic(err)
	}
	fmt.Println("-- original query tree --")
	fmt.Println(q.SQL())
	fmt.Println()

	// Optimize with cost-based query transformation.
	opt := cbqt.New(db.Catalog)
	res, err := opt.Optimize(q)
	if err != nil {
		panic(err)
	}
	fmt.Println("-- transformed query tree (winning directives applied) --")
	fmt.Println(res.Query.SQL())
	fmt.Println()
	fmt.Printf("-- states evaluated: %d, blocks optimized: %d, annotation hits: %d --\n\n",
		res.Stats.StatesEvaluated, res.Stats.BlocksOptimized, res.Stats.AnnotationHits)

	fmt.Println("-- physical plan --")
	fmt.Println(optimizer.Explain(res.Plan))

	// Execute.
	r, err := exec.Run(db, res.Plan)
	if err != nil {
		panic(err)
	}
	fmt.Printf("-- %d rows --\n", len(r.Rows))
	for i, row := range r.Rows {
		if i >= 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %v\n", row)
	}
}
