// Window functions and predicate pushdown through PARTITION BY: the
// paper's Q7 -> Q8 (§2.1.3). A view computes a running average balance per
// account; the outer query filters one account and the first months. The
// filter on the PARTITION BY column is pushed into the view (it removes
// whole partitions, so the running frames are unchanged); the filter on the
// ORDER BY column must stay outside (pushing it would truncate the frames).
package main

import (
	"fmt"

	"repro/internal/cbqt"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/testkit"
)

func main() {
	db := testkit.NewDB(testkit.MediumSizes(), 1)

	q7 := `
SELECT v.acct_id, v.time, v.ravg FROM
(SELECT a.acct_id acct_id, a.time time,
        AVG(a.balance) OVER (PARTITION BY a.acct_id ORDER BY a.time
          RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) ravg
 FROM accounts a) v
WHERE v.acct_id = 'ORCL' AND v.time <= 12`

	fmt.Println("-- Q7 (before) --")
	fmt.Println(qtree.MustBind(q7, db.Catalog).SQL())

	q := qtree.MustBind(q7, db.Catalog)
	o := cbqt.New(db.Catalog)
	res, err := o.Optimize(q)
	if err != nil {
		panic(err)
	}
	fmt.Println("\n-- Q8 (after predicate move-around) --")
	fmt.Println(res.Query.SQL())
	fmt.Println("\nnote: the acct_id predicate moved inside the view (PARTITION BY")
	fmt.Println("column: removes whole partitions); the time predicate stayed outside")
	fmt.Println("(ORDER BY column: pushing it would change the running-average frames).")

	fmt.Println("\n-- plan --")
	fmt.Println(optimizer.Explain(res.Plan))

	r, err := exec.Run(db, res.Plan)
	if err != nil {
		panic(err)
	}
	fmt.Printf("-- %d rows --\n", len(r.Rows))
	for i, row := range r.Rows {
		if i >= 6 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %v\n", row)
	}
}
