// Join predicate pushdown walk-through: the paper's Q12 -> Q13 and the
// juxtaposition with view merging (Q18) from §3.3.2. The framework costs
// three forms of a DISTINCT-view join — unchanged, merged, and with the
// join predicate pushed down (which removes the distinct and converts the
// join to a semijoin) — and picks the cheapest.
package main

import (
	"fmt"

	"repro/internal/cbqt"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/storage"
	"repro/internal/testkit"
	"repro/internal/transform"
)

func main() {
	db := testkit.NewDB(testkit.MediumSizes(), 1)

	// Q12 shape: a DISTINCT view over a large table joined to a small
	// outer row set.
	q12 := `
SELECT e1.employee_name, j.job_title
FROM employees e1, job_history j,
     (SELECT DISTINCT s.dept_id FROM sales s, departments d
      WHERE s.dept_id = d.dept_id AND s.amount > 500) v
WHERE e1.dept_id = v.dept_id AND e1.emp_id = j.emp_id AND
      e1.emp_id BETWEEN 200 AND 230`

	fmt.Println("==== juxtaposition: unchanged vs merged (Q18) vs JPPD (Q13) ====")
	rule := &transform.ViewStrategy{}
	labels := map[int]string{
		0: "state 0: keep the distinct view",
		1: "state 1: merge the view into the outer block (Q18)",
		2: "state 2: push join predicate down; distinct removed, semijoin (Q13)",
	}
	var rows0 int
	for v := 0; v <= 2; v++ {
		q := qtree.MustBind(q12, db.Catalog)
		if v > 0 {
			if rule.Find(q) == 0 {
				fmt.Println("  no view object found")
				return
			}
			if err := rule.Apply(q, 0, v); err != nil {
				fmt.Printf("  %-65s (not applicable: %v)\n", labels[v], err)
				continue
			}
		}
		p := optimizer.New(db.Catalog)
		plan, err := p.Optimize(q)
		if err != nil {
			fmt.Printf("  %-65s (error: %v)\n", labels[v], err)
			continue
		}
		n := mustRows(db, plan)
		if v == 0 {
			rows0 = n
		} else if n != rows0 {
			panic(fmt.Sprintf("variant %d changed the result: %d vs %d rows", v, n, rows0))
		}
		fmt.Printf("  %-65s cost = %9.0f (%d rows)\n", labels[v], plan.Cost.Total, n)
	}

	q := qtree.MustBind(q12, db.Catalog)
	o := cbqt.New(db.Catalog)
	res, err := o.Optimize(q)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nframework chose (cost %.0f):\n  %s\n", res.Plan.Cost.Total, res.Query.SQL())
	fmt.Println("\nfinal plan:")
	fmt.Println(optimizer.Explain(res.Plan))
}

func mustRows(db *storage.DB, plan *optimizer.Plan) int {
	r, err := exec.Run(db, plan)
	if err != nil {
		panic(err)
	}
	return len(r.Rows)
}
