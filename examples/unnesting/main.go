// Unnesting walk-through: the paper's Q1 -> Q10 -> Q11 chain, showing how
// the cost-based framework enumerates the state space — including the
// interleaving of view merging with unnesting (§3.3.1) — and why the same
// kind of subquery should sometimes stay nested (tuple iteration semantics
// with an index) and sometimes be unnested.
package main

import (
	"fmt"

	"repro/internal/cbqt"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/storage"
	"repro/internal/testkit"
	"repro/internal/transform"
)

func main() {
	db := testkit.NewDB(testkit.MediumSizes(), 1)

	// Case A: highly selective outer filter and an indexed correlation
	// column — TIS evaluates the subquery for a handful of departments,
	// so unnesting does not pay.
	selective := `
SELECT e1.employee_name FROM employees e1
WHERE e1.emp_id BETWEEN 100 AND 120 AND
      e1.salary > (SELECT AVG(e2.salary) FROM employees e2
                   WHERE e2.dept_id = e1.dept_id)`

	// Case B: broad filter and a correlation column with no index inside
	// the subquery — TIS rescans job_history per department; unnesting
	// into a group-by view wins decisively.
	broad := `
SELECT e1.employee_name FROM employees e1
WHERE e1.salary > 2000 AND
      e1.salary > (SELECT AVG(jb.min_salary) FROM job_history j, jobs jb
                   WHERE j.job_id = jb.job_id AND j.dept_id = e1.dept_id)`

	for _, c := range []struct{ name, sql string }{
		{"A: selective outer + indexed correlation", selective},
		{"B: broad outer + unindexed correlation", broad},
	} {
		fmt.Printf("==== case %s ====\n", c.name)
		showStateSpace(db, c.sql)
		fmt.Println()
	}
}

// showStateSpace costs every variant of the unnesting transformation by
// hand (exactly what the exhaustive search does internally), then shows
// the framework's decision.
func showStateSpace(db *storage.DB, sql string) {
	rule := &transform.UnnestSubquery{}
	labels := []string{
		"state 0: keep nested (tuple iteration semantics)",
		"state 1: unnest into a group-by inline view (Q10)",
		"state 2: unnest + merge the view, interleaved (Q11)",
	}
	base := qtree.MustBind(sql, db.Catalog)
	nVariants := rule.Variants(base, 0)
	for v := 0; v <= nVariants; v++ {
		q := qtree.MustBind(sql, db.Catalog)
		if v > 0 {
			if err := rule.Apply(q, 0, v); err != nil {
				fmt.Printf("  %-55s (not applicable: %v)\n", labels[v], err)
				continue
			}
		}
		p := optimizer.New(db.Catalog)
		plan, err := p.Optimize(q)
		if err != nil {
			fmt.Printf("  %-55s (error: %v)\n", labels[v], err)
			continue
		}
		fmt.Printf("  %-55s cost = %10.0f\n", labels[v], plan.Cost.Total)
	}

	// Now let the framework decide.
	q := qtree.MustBind(sql, db.Catalog)
	o := cbqt.New(db.Catalog)
	res, err := o.Optimize(q)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  framework chose (cost %.0f, %d states):\n    %s\n",
		res.Plan.Cost.Total, res.Stats.StatesEvaluated, res.Query.SQL())
}
