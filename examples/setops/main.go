// Set-operation and disjunction transformations: join factorization
// (Q14 -> Q15), MINUS/INTERSECT into anti/semijoin (§2.2.7, with the
// distinct-placement variants), and disjunction into UNION ALL (§2.2.8).
// Each transformation is shown with its cost effect and verified to
// preserve the result.
package main

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/storage"
	"repro/internal/testkit"
	"repro/internal/transform"
)

func main() {
	db := testkit.NewDB(testkit.MediumSizes(), 1)

	fmt.Println("==== join factorization (Q14 -> Q15) ====")
	demo(db, `
SELECT d.department_name, e.employee_name
FROM employees e, departments d
WHERE e.dept_id = d.dept_id AND e.salary > 9000
UNION ALL
SELECT d.department_name, j.job_title
FROM job_history j, departments d
WHERE j.dept_id = d.dept_id AND j.start_date > '20040101'`,
		&transform.JoinFactorization{}, 1)

	fmt.Println("==== MINUS into antijoin, duplicates removed at the output ====")
	demo(db, `
SELECT e.dept_id FROM employees e WHERE e.salary > 3000
MINUS
SELECT s.dept_id FROM sales s WHERE s.amount > 900`,
		&transform.SetOpIntoJoin{}, 1)

	fmt.Println("==== MINUS into antijoin, duplicates removed at the input ====")
	demo(db, `
SELECT e.dept_id FROM employees e WHERE e.salary > 3000
MINUS
SELECT s.dept_id FROM sales s WHERE s.amount > 900`,
		&transform.SetOpIntoJoin{}, 2)

	fmt.Println("==== INTERSECT into semijoin ====")
	demo(db, `
SELECT e.dept_id FROM employees e WHERE e.salary > 9500
INTERSECT
SELECT s.dept_id FROM sales s WHERE s.amount > 950`,
		&transform.SetOpIntoJoin{}, 1)

	fmt.Println("==== disjunction into UNION ALL (both sides become index scans) ====")
	demo(db, `
SELECT e.employee_name FROM employees e
WHERE e.emp_id = 4321 OR e.dept_id = 17`,
		&transform.OrExpansion{}, 1)
}

// demo costs the query before and after applying variant v of the rule and
// verifies the result multiset size is unchanged.
func demo(db *storage.DB, sql string, rule transform.Rule, variant int) {
	before := qtree.MustBind(sql, db.Catalog)
	pb := optimizer.New(db.Catalog)
	planB, err := pb.Optimize(before)
	if err != nil {
		panic(err)
	}
	rowsBefore := countRows(db, planB)

	after := qtree.MustBind(sql, db.Catalog)
	if rule.Find(after) == 0 {
		fmt.Println("  (rule found no objects)")
		return
	}
	if err := rule.Apply(after, 0, variant); err != nil {
		fmt.Printf("  (not applicable: %v)\n", err)
		return
	}
	pa := optimizer.New(db.Catalog)
	planA, err := pa.Optimize(after)
	if err != nil {
		panic(err)
	}
	rowsAfter := countRows(db, planA)
	if rowsBefore != rowsAfter {
		panic(fmt.Sprintf("transformation changed the result: %d vs %d rows", rowsBefore, rowsAfter))
	}
	fmt.Printf("  before: cost %9.0f   after: cost %9.0f   (%d rows)\n",
		planB.Cost.Total, planA.Cost.Total, rowsBefore)
	fmt.Printf("  transformed: %s\n\n", after.SQL())
}

func countRows(db *storage.DB, plan *optimizer.Plan) int {
	r, err := exec.Run(db, plan)
	if err != nil {
		panic(err)
	}
	return len(r.Rows)
}
